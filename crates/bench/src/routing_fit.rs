//! Offline calibration of the adaptive router's [`RoutingTable`]: the fixed
//! query sweep, the per-engine measurements, the linear least-squares fit and
//! the `docs/routing_table.json` document behind the `routing_table` binary.
//!
//! The router itself (`pefp_core::route_query`) never measures anything —
//! its coefficients come from here:
//!
//! * the **sweep** is a fixed, deterministic set of queries spanning the
//!   regimes of the paper's evaluation (§VII): trivial diamonds, infeasible
//!   pairs, mid-size power-law subgraphs, 10k-hub device-tier work and a
//!   walk-count-saturating clique;
//! * `--write` measures BC-DFS and JOIN wall time per query (normalised to
//!   the `BENCH_04.json` reference machine through the same calibration
//!   probe the bench gate uses), takes the *modelled* device latency and
//!   PCIe transfer curve (both deterministic), fits one `fixed + unit × work`
//!   line per engine, rounds the coefficients aggressively and records the
//!   table **plus the routing decision of every sweep query** under it;
//! * `--check` is fully deterministic (no timing): the committed table must
//!   parse, validate, match [`RoutingTable::builtin`] exactly, and reproduce
//!   the recorded decision of every sweep query. CI runs only `--check`;
//!   whether the table routes *well* is gated separately by the `BENCH_08`
//!   mixed-workload floors.

use pefp_core::{
    pre_bfs, route_query, run_prepared_with_sink, EngineOptions, PefpVariant, RouteContext,
    RouteFeatures, RoutingTable,
};
use pefp_fpga::{DeviceConfig, Pcie};
use pefp_graph::generators::chung_lu;
use pefp_graph::sink::CountingSink;
use pefp_graph::{CsrGraph, VertexId};
use pefp_host::DmaEngine;
use pefp_workload::{routing_io, JsonValue, ToJson};
use std::time::Instant;

/// CUs assumed by every sweep decision (the gate runtime's fleet size).
pub const SWEEP_COMPUTE_UNITS: usize = 4;

/// Calibration median of the machine that wrote `BENCH_04.json`. CPU
/// measurements are rescaled to this reference before fitting, so the
/// committed coefficients are machine-independent up to rounding.
pub const REFERENCE_CALIBRATION_NS: f64 = 2_701_964.0;

/// CPU engines are only *timed* on queries whose work proxy stays below this
/// (the fit only needs the linear region; past it the sweep still records
/// the device-side decision).
pub const MEASURE_WORK_CAP: f64 = 1e7;

/// The graph a sweep query runs on, reconstructible from the spec alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepGraph {
    /// The 4-vertex diamond of the quickstart examples.
    Diamond,
    /// Two disconnected edges — every s-t query is infeasible.
    Disconnected,
    /// The complete digraph on 12 vertices — saturates the walk bounds at
    /// high `k`.
    Complete12,
    /// `chung_lu(n, deg_tenths / 10, 2.2, seed)`.
    ChungLu {
        /// Vertices.
        n: usize,
        /// Average degree × 10 (kept integral so the spec stays `Eq`).
        deg_tenths: u32,
        /// Generator seed.
        seed: u64,
    },
}

impl SweepGraph {
    fn build(self) -> CsrGraph {
        match self {
            SweepGraph::Diamond => CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]),
            SweepGraph::Disconnected => CsrGraph::from_edges(4, &[(0, 1), (2, 3)]),
            SweepGraph::Complete12 => {
                let mut edges = Vec::new();
                for a in 0..12u32 {
                    for b in 0..12u32 {
                        if a != b {
                            edges.push((a, b));
                        }
                    }
                }
                CsrGraph::from_edges(12, &edges)
            }
            SweepGraph::ChungLu { n, deg_tenths, seed } => {
                chung_lu(n, deg_tenths as f64 / 10.0, 2.2, seed).to_csr()
            }
        }
    }
}

/// One sweep query: a stable name, the graph spec and the `(s, t, k)` triple.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Stable case name recorded in `docs/routing_table.json`.
    pub name: String,
    graph: SweepGraph,
    s: u32,
    t: u32,
    k: u32,
}

/// The fixed calibration sweep, in a deterministic order. Covers every
/// routing regime: infeasible, trivial-CPU, mid-size, device-tier hub work
/// and saturated walk bounds.
pub fn sweep_specs() -> Vec<SweepSpec> {
    let mut specs = Vec::new();
    let mut push = |name: &str, graph: SweepGraph, s: u32, t: u32, k: u32| {
        specs.push(SweepSpec { name: name.to_string(), graph, s, t, k });
    };
    push("diamond_k3", SweepGraph::Diamond, 0, 3, 3);
    push("disconnected_k5", SweepGraph::Disconnected, 0, 3, 5);
    push("clique12_k30", SweepGraph::Complete12, 0, 1, 30);
    let small = SweepGraph::ChungLu { n: 200, deg_tenths: 40, seed: 1 };
    for (s, t, k) in [(0, 7, 3), (3, 11, 4), (5, 50, 4), (20, 4, 5)] {
        push(&format!("cl200_s{s}_t{t}_k{k}"), small, s, t, k);
    }
    let mid = SweepGraph::ChungLu { n: 2_000, deg_tenths: 60, seed: 7 };
    for (s, t, k) in [(0, 1, 4), (1, 900, 4), (2, 3, 5), (10, 450, 5), (0, 2, 6)] {
        push(&format!("cl2000_s{s}_t{t}_k{k}"), mid, s, t, k);
    }
    let gate = SweepGraph::ChungLu { n: 10_000, deg_tenths: 80, seed: 3 };
    for (s, t, k) in [(0, 3, 5), (0, 3, 6), (1, 2, 6), (0, 3, 7), (4, 9, 6)] {
        push(&format!("cl10k_s{s}_t{t}_k{k}"), gate, s, t, k);
    }
    specs
}

/// One sweep query's measurements: the feature vector, the wall time of each
/// CPU engine (when within [`MEASURE_WORK_CAP`]) and the modelled device
/// latency.
#[derive(Debug, Clone)]
pub struct FitMeasurement {
    /// Sweep case name.
    pub name: String,
    /// The router's deterministic feature vector for the query.
    pub features: RouteFeatures,
    /// Median BC-DFS wall microseconds (reference-machine scale).
    pub bcdfs_us: Option<f64>,
    /// Median JOIN wall microseconds (reference-machine scale).
    pub join_us: Option<f64>,
    /// Modelled device kernel latency in microseconds (deterministic).
    pub device_us: Option<f64>,
}

fn median_us<F: FnMut()>(mut routine: F) -> f64 {
    routine(); // warm-up
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let started = Instant::now();
            routine();
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    samples[samples.len() / 2]
}

/// Runs the sweep, timing the CPU engines (scaled by `cpu_scale`, the
/// reference-machine ratio) and taking the modelled device latency.
pub fn measure_sweep(cpu_scale: f64) -> Vec<FitMeasurement> {
    use pefp_baselines::{BcDfs, Join};
    use std::ops::ControlFlow;

    let device_cfg = DeviceConfig::alveo_u200();
    sweep_specs()
        .into_iter()
        .map(|spec| {
            let g = spec.graph.build();
            let prepared = pre_bfs(&g, VertexId(spec.s), VertexId(spec.t), spec.k);
            let features = RouteFeatures::compute(&prepared);
            let feasible = features.feasible && !features.estimate.saturated;
            let pg = prepared.graph.as_ref();
            let (s, t, k) = (prepared.s, prepared.t, prepared.k);

            let bcdfs_us = (feasible && features.dfs_work <= MEASURE_WORK_CAP).then(|| {
                cpu_scale
                    * median_us(|| {
                        // Mirror the runtime's dispatch: prepared barrier with
                        // the source clamp, counting through the sink pipeline.
                        let mut bar = prepared.barrier.clone();
                        if let Some(b) = bar.get_mut(s.index()) {
                            *b = (*b).min(k);
                        }
                        let mut sink = CountingSink::new();
                        let _ = BcDfs::with_barrier(bar, k).enumerate_into(pg, s, t, k, &mut sink);
                        std::hint::black_box(sink.count());
                    })
            });
            let join_us = (feasible && features.join_work <= MEASURE_WORK_CAP).then(|| {
                cpu_scale
                    * median_us(|| {
                        let mut count = 0u64;
                        let mut sink = pefp_graph::sink::FnSink(|_: &[VertexId]| {
                            count += 1;
                            ControlFlow::Continue(())
                        });
                        let _ = Join::new().enumerate_into(pg, s, t, k, &mut sink);
                        std::hint::black_box(count);
                    })
            });
            let device_us = (features.feasible && !features.estimate.saturated).then(|| {
                let opts =
                    EngineOptions { collect_paths: false, ..PefpVariant::Full.engine_options() };
                let mut sink = CountingSink::new();
                let result = run_prepared_with_sink(&prepared, opts, &device_cfg, &mut sink);
                result.query_millis * 1e3
            });

            FitMeasurement { name: spec.name, features, bcdfs_us, join_us, device_us }
        })
        .collect()
}

/// Ordinary least squares for `y = intercept + slope * x`. Returns `None`
/// when the points carry no spread in `x`.
fn fit_line(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let var_x = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum::<f64>();
    if var_x <= f64::EPSILON {
        return None;
    }
    let cov = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum::<f64>();
    let slope = cov / var_x;
    Some((mean_y - slope * mean_x, slope))
}

/// Rounds to `digits` significant digits (the committed table carries no
/// machine noise beyond this).
fn round_sig(value: f64, digits: i32) -> f64 {
    if value == 0.0 || !value.is_finite() {
        return 0.0;
    }
    let magnitude = value.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - magnitude);
    (value * factor).round() / factor
}

/// Fits one `fixed + unit × work` line per engine from the sweep
/// measurements and returns the rounded table. Engines without enough
/// measured spread keep the builtin coefficients; the policy thresholds
/// (CPU ceiling, multi-CU cutoff and efficiency) are not fitted.
pub fn fit_table(measurements: &[FitMeasurement]) -> RoutingTable {
    let mut table = RoutingTable::builtin();

    let points = |select: &dyn Fn(&FitMeasurement) -> Option<(f64, f64)>| -> Vec<(f64, f64)> {
        measurements.iter().filter_map(select).collect()
    };
    let clamp = |intercept: f64, slope: f64| -> (f64, f64) {
        (round_sig(intercept.max(0.1), 2), round_sig(slope.max(1e-6), 2))
    };

    if let Some((fixed, unit)) =
        fit_line(&points(&|m| m.bcdfs_us.map(|us| (m.features.dfs_work, us))))
    {
        (table.bcdfs_fixed_us, table.bcdfs_us_per_unit) = clamp(fixed, unit);
    }
    if let Some((fixed, unit)) =
        fit_line(&points(&|m| m.join_us.map(|us| (m.features.join_work, us))))
    {
        (table.join_fixed_us, table.join_us_per_unit) = clamp(fixed, unit);
    }
    if let Some((fixed, unit)) =
        fit_line(&points(&|m| m.device_us.map(|us| (m.features.dfs_work, us))))
    {
        (table.device_fixed_us, table.device_us_per_unit) = clamp(fixed, unit);
    }

    // Transfer slope from the modelled DMA path the runtime itself uses
    // (PCIe link + descriptor framing), between two representative payloads.
    let cfg = DeviceConfig::alveo_u200();
    let mut dma = DmaEngine::with_defaults(Pcie::new(cfg.pcie_gbps, cfg.pcie_setup_us));
    let small = dma.transfer(64 << 10).total_millis * 1e3;
    let large = dma.transfer(8 << 20).total_millis * 1e3;
    let kib_delta = ((8 << 20) - (64 << 10)) as f64 / 1024.0;
    table.transfer_us_per_kib = round_sig(((large - small) / kib_delta).max(1e-6), 2);

    table
}

/// Routes every sweep query under `table` (at [`SWEEP_COMPUTE_UNITS`] CUs)
/// and returns `(case name, engine name)` pairs. Fully deterministic.
pub fn sweep_decisions(table: &RoutingTable) -> Vec<(String, &'static str)> {
    let ctx = RouteContext { compute_units: SWEEP_COMPUTE_UNITS, charge_banked: false };
    sweep_specs()
        .into_iter()
        .map(|spec| {
            let g = spec.graph.build();
            let prepared = pre_bfs(&g, VertexId(spec.s), VertexId(spec.t), spec.k);
            let decision = route_query(&prepared, table, &ctx);
            (spec.name, decision.choice.name())
        })
        .collect()
}

/// Serialises the calibrated table plus its sweep decisions as the
/// `docs/routing_table.json` document.
pub fn table_document(
    table: &RoutingTable,
    decisions: &[(String, &'static str)],
    note: &str,
) -> JsonValue {
    let sweep: Vec<JsonValue> = decisions
        .iter()
        .map(|(name, engine)| {
            JsonValue::object(vec![
                ("name", JsonValue::String(name.clone())),
                ("engine", JsonValue::String(engine.to_string())),
            ])
        })
        .collect();
    JsonValue::object(vec![
        (
            "_meta",
            JsonValue::object(vec![
                ("artefact", JsonValue::String("routing_table".to_string())),
                ("note", JsonValue::String(note.to_string())),
                ("compute_units", JsonValue::Number(SWEEP_COMPUTE_UNITS as f64)),
                ("reference_calibration_ns", JsonValue::Number(REFERENCE_CALIBRATION_NS)),
            ]),
        ),
        ("table", table.to_json()),
        ("sweep", JsonValue::Array(sweep)),
    ])
}

/// Parses a `docs/routing_table.json` document back into the table and its
/// recorded sweep decisions.
pub fn parse_table_document(text: &str) -> Result<(RoutingTable, Vec<(String, String)>), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let table = routing_io::routing_table_from_json(doc.get("table").ok_or("missing table")?)?;
    let sweep = doc
        .get("sweep")
        .and_then(JsonValue::as_array)
        .ok_or("missing sweep")?
        .iter()
        .map(|case| {
            let name = case
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("sweep case without name")?
                .to_string();
            let engine = case
                .get("engine")
                .and_then(JsonValue::as_str)
                .ok_or("sweep case without engine")?
                .to_string();
            Ok((name, engine))
        })
        .collect::<Result<Vec<_>, &str>>()?;
    Ok((table, sweep))
}

/// The deterministic `--check` comparison: the committed table must be
/// valid, byte-equal in decisions to the recorded sweep, and in sync with
/// [`RoutingTable::builtin`]. Returns the human-readable failure list.
pub fn check_document(table: &RoutingTable, recorded: &[(String, String)]) -> Vec<String> {
    let mut failures = table.validate();
    if *table != RoutingTable::builtin() {
        failures.push(
            "committed table differs from RoutingTable::builtin() — update the builtin \
             coefficients in crates/core/src/routing.rs to match docs/routing_table.json"
                .to_string(),
        );
    }
    let fresh = sweep_decisions(table);
    if fresh.len() != recorded.len() {
        failures.push(format!(
            "sweep changed: {} cases recorded, {} in the code (regenerate with --write)",
            recorded.len(),
            fresh.len()
        ));
        return failures;
    }
    for ((name, engine), (rec_name, rec_engine)) in fresh.iter().zip(recorded) {
        if name != rec_name {
            failures.push(format!(
                "sweep case order changed: expected {rec_name}, derived {name} \
                 (regenerate with --write)"
            ));
        } else if engine != rec_engine {
            failures.push(format!(
                "{name}: committed table routes to {engine}, but {rec_engine} was recorded"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_line_recovers_a_known_line() {
        let points: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64 * 100.0, 3.0 + 0.25 * i as f64 * 100.0)).collect();
        let (intercept, slope) = fit_line(&points).unwrap();
        assert!((intercept - 3.0).abs() < 1e-9);
        assert!((slope - 0.25).abs() < 1e-12);
        assert_eq!(fit_line(&points[..1]), None);
        assert_eq!(fit_line(&[(5.0, 1.0), (5.0, 2.0)]), None);
    }

    #[test]
    fn round_sig_keeps_two_digits() {
        assert_eq!(round_sig(0.02345, 2), 0.023);
        assert_eq!(round_sig(1234.5, 2), 1200.0);
        assert_eq!(round_sig(0.0, 2), 0.0);
    }

    #[test]
    fn sweep_decisions_are_deterministic_and_cover_every_regime() {
        let table = RoutingTable::builtin();
        let a = sweep_decisions(&table);
        let b = sweep_decisions(&table);
        assert_eq!(a, b);
        assert_eq!(a.len(), sweep_specs().len());
        let engines: std::collections::BTreeSet<&str> = a.iter().map(|(_, e)| *e).collect();
        assert!(engines.contains("bc_dfs") || engines.contains("join"), "{engines:?}");
        assert!(engines.contains("device") || engines.contains("device_multi_cu"), "{engines:?}");
    }

    #[test]
    fn document_round_trips_and_checks_clean() {
        let table = RoutingTable::builtin();
        let decisions = sweep_decisions(&table);
        let text = table_document(&table, &decisions, "test").render_pretty();
        let (parsed, recorded) = parse_table_document(&text).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(recorded.len(), decisions.len());
        assert!(check_document(&parsed, &recorded).is_empty());
        // A tampered decision is caught.
        let mut tampered = recorded.clone();
        tampered[0].1 = "device_multi_cu".to_string();
        let failures = check_document(&parsed, &tampered);
        assert_eq!(failures.len(), 1, "{failures:?}");
    }

    #[test]
    fn committed_table_matches_builtin_and_its_sweep() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/routing_table.json");
        let text = std::fs::read_to_string(path).expect("docs/routing_table.json is committed");
        let (table, recorded) = parse_table_document(&text).unwrap();
        let failures = check_document(&table, &recorded);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
