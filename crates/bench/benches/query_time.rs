//! Fig. 8 — query processing time, PEFP vs JOIN.
//!
//! For each representative dataset the bench measures the *query phase* of
//! both systems on a fixed prepared workload: PEFP's simulated device run
//! (which also performs the full enumeration in software) and JOIN's query
//! phase. Preprocessing is excluded here (it is covered by `preprocess_time`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_baselines::Join;
use pefp_bench::{bench_scale, make_runner};
use pefp_core::{prepare, run_prepared, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::Dataset;
use std::hint::black_box;

fn bench_query_time(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let device = DeviceConfig::alveo_u200();
    let cases = [
        (Dataset::WikiTalk, 4u32),
        (Dataset::TwitterSocial, 5),
        (Dataset::Amazon, 8),
        (Dataset::Skitter, 5),
    ];

    let mut group = c.benchmark_group("fig8_query_time");
    group.sample_size(10);
    for (dataset, k) in cases {
        if runner.exceeds_budget(dataset, k) {
            continue;
        }
        let g = runner.graph(dataset).clone();
        let queries = runner.queries(dataset, k);
        let Some(q) = queries.first().copied() else { continue };

        // PEFP: preprocessing hoisted out, device run measured.
        let prep = prepare(&g, q.s, q.t, k, PefpVariant::Full);
        let mut opts = PefpVariant::Full.engine_options();
        opts.collect_paths = false;
        group.bench_with_input(BenchmarkId::new("PEFP", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(run_prepared(&prep, opts.clone(), &device).num_paths))
        });

        // JOIN: preprocessing hoisted out, query phase measured.
        let join_prep = Join::new().preprocess(&g, q.s, q.t, k);
        group.bench_with_input(BenchmarkId::new("JOIN", dataset.code()), &k, |b, _| {
            b.iter(|| {
                let mut join = Join::new();
                black_box(join.query(&g, q.s, q.t, k, &join_prep).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
