//! Fig. 9 — preprocessing time, PEFP (Pre-BFS) vs JOIN.
//!
//! PEFP's Pre-BFS does a `(k-1)`-hop bidirectional BFS plus the induced
//! subgraph extraction; JOIN's preprocessing does a full k-hop bidirectional
//! BFS plus the middle-vertex cut. The paper's Fig. 9 shows Pre-BFS winning on
//! every dataset; this bench measures both on the same queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_baselines::Join;
use pefp_bench::{bench_scale, make_runner};
use pefp_core::{pre_bfs, pre_bfs_with, PrepareContext};
use pefp_graph::Dataset;
use std::hint::black_box;

fn bench_preprocess_time(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let cases = [
        (Dataset::Amazon, 8u32),
        (Dataset::WikiTalk, 4),
        (Dataset::Skitter, 5),
        (Dataset::TwitterSocial, 5),
    ];

    let mut group = c.benchmark_group("fig9_preprocess_time");
    group.sample_size(20);
    for (dataset, k) in cases {
        let g = runner.graph(dataset).clone();
        let queries = runner.queries(dataset, k);
        let Some(q) = queries.first().copied() else { continue };

        // One-shot Pre-BFS: pays the reverse CSR and fresh O(|V|) scratch
        // per call (the pre-PrepareContext behaviour).
        group.bench_with_input(BenchmarkId::new("PEFP_PreBFS", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(pre_bfs(&g, q.s, q.t, k).graph.num_vertices()))
        });
        // Reused context: the repeated-query server/batch path.
        let mut ctx = PrepareContext::new();
        group.bench_with_input(BenchmarkId::new("PEFP_PreBFS_ctx", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(pre_bfs_with(&mut ctx, &g, q.s, q.t, k).graph.num_vertices()))
        });
        group.bench_with_input(BenchmarkId::new("JOIN_preprocess", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(Join::new().preprocess(&g, q.s, q.t, k).middle_vertices.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess_time);
criterion_main!(benches);
