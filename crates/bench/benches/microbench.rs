//! Component-level microbenchmarks.
//!
//! These do not correspond to a specific paper figure; they track the cost of
//! the individual building blocks (CSR construction, k-hop BFS, Pre-BFS,
//! path-row operations, verification throughput) so performance regressions
//! can be localised when the figure-level numbers move.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pefp_core::engine::verify::{verify, Verdict};
use pefp_core::{pre_bfs, pre_bfs_with, PrepareContext, TempPath};
use pefp_graph::bfs::{khop_bfs, BfsScratch};
use pefp_graph::{generators, CsrBuilder, VertexId};
use std::hint::black_box;
use std::sync::Arc;

fn bench_csr_construction(c: &mut Criterion) {
    let graph = generators::chung_lu(5_000, 8.0, 2.2, 1);
    let edges: Vec<(VertexId, VertexId)> = graph.edges().map(|e| (e.from, e.to)).collect();
    let n = graph.num_vertices();
    let mut group = c.benchmark_group("csr_construction");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("build_from_edge_list", |b| {
        b.iter(|| {
            let mut builder = CsrBuilder::with_edge_capacity(n, edges.len());
            for &(u, v) in &edges {
                builder.add_edge(u, v);
            }
            black_box(builder.build().num_edges())
        })
    });
    group.finish();
}

fn bench_khop_bfs(c: &mut Criterion) {
    let g = generators::chung_lu(10_000, 8.0, 2.2, 2).to_csr();
    let mut group = c.benchmark_group("khop_bfs");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for k in [2u32, 4, 6] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(khop_bfs(&g, VertexId(0), k).len()))
        });
        // Epoch-stamped scratch: O(touched) per run instead of a fresh O(|V|)
        // distance array.
        let mut scratch = BfsScratch::new();
        group.bench_function(format!("k{k}_scratch"), |b| {
            b.iter(|| {
                scratch.run(&g, VertexId(0), k);
                black_box(scratch.touched_len())
            })
        });
    }
    group.finish();
}

fn bench_prebfs(c: &mut Criterion) {
    let g = Arc::new(generators::chung_lu(10_000, 8.0, 2.2, 3).to_csr());
    let mut group = c.benchmark_group("pre_bfs");
    for k in [3u32, 5] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(pre_bfs(&g, VertexId(0), VertexId(5_000), k).graph.num_edges()))
        });
        // The repeated-query path: scratch and the reverse CSR amortised
        // across queries by a reused PrepareContext.
        let mut ctx = PrepareContext::new();
        group.bench_function(format!("k{k}_ctx"), |b| {
            b.iter(|| {
                black_box(
                    pre_bfs_with(&mut ctx, &g, VertexId(0), VertexId(5_000), k).graph.num_edges(),
                )
            })
        });
    }
    group.finish();
}

fn bench_path_rows(c: &mut Criterion) {
    let g = generators::chung_lu(1_000, 8.0, 2.2, 4).to_csr();
    let base = TempPath::initial(&g, VertexId(0));
    let succ = g.successors(VertexId(0)).first().copied().unwrap_or(VertexId(1));
    let mut group = c.benchmark_group("path_rows");
    group.throughput(Throughput::Elements(1));
    group
        .bench_function("extend", |b| b.iter(|| black_box(base.extended(&g, succ).num_vertices())));
    let long = (1..=10u32).fold(base, |p, i| {
        let v = VertexId(i % g.num_vertices() as u32);
        if p.contains(v) {
            p
        } else {
            p.extended(&g, v)
        }
    });
    group.bench_function("visited_check", |b| b.iter(|| black_box(long.contains(VertexId(999)))));
    group.finish();
}

fn bench_verification_throughput(c: &mut Criterion) {
    let g = generators::chung_lu(1_000, 8.0, 2.2, 5).to_csr();
    let prep = pre_bfs(&g, VertexId(0), VertexId(500), 5);
    let path = TempPath::initial(&prep.graph, prep.s);
    let successors: Vec<VertexId> = prep.graph.successors(prep.s).to_vec();
    if successors.is_empty() {
        return;
    }
    let mut group = c.benchmark_group("verification");
    group.throughput(Throughput::Elements(successors.len() as u64));
    group.bench_function("three_stage_check", |b| {
        b.iter(|| {
            let mut valid = 0u32;
            for &nbr in &successors {
                if verify(&path, nbr, prep.t, 5, prep.barrier[nbr.index()]) == Verdict::Valid {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("chung_lu_5k", |b| {
        b.iter(|| black_box(generators::chung_lu(5_000, 8.0, 2.2, 7).num_edges()))
    });
    group.bench_function("copying_5k", |b| {
        b.iter(|| black_box(generators::copying_model(5_000, 6, 0.2, 7).num_edges()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_csr_construction,
    bench_khop_bfs,
    bench_prebfs,
    bench_path_rows,
    bench_verification_throughput,
    bench_generators
);
criterion_main!(benches);
