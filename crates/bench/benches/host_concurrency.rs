//! Host-runtime concurrency: aggregate throughput of 1/4/16 closed-loop
//! sessions sharing one 4-CU `HostRuntime`, with the shared prepared-query
//! cache on and off.
//!
//! The workload mirrors the bench-regression gate (`pefp_bench::gate`): every
//! session runs the 56 hub-pair queries at k=6 on the 10k Chung-Lu profile,
//! one at a time (closed loop), so the number of in-flight jobs equals the
//! number of sessions. Wall-clock covers the whole round (runtime launch +
//! all clients); the untimed header run prints the virtual-time domain —
//! queries per virtual-makespan cycle — which is what the `BENCH_05` gate
//! floors, because it is machine-independent.
//!
//! "no_cache" disables the runtime's shared LRU; on this pool (no session
//! repeats a query) that is exactly what per-session caches would deliver, so
//! the shared/no_cache gap is the cross-tenant sharing win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::gate::{concurrency_runtime, gate_batch, gate_graph, run_concurrency_clients};
use std::hint::black_box;

fn bench_host_concurrency(c: &mut Criterion) {
    let handle = gate_graph();
    let pool = gate_batch(&handle);

    let mut group = c.benchmark_group("host_concurrency");
    group.sample_size(10);
    for &sessions in &[1usize, 4, 16] {
        for (label, shared_cache) in [("shared_cache", true), ("no_cache", false)] {
            // One untimed run to report the simulated domain.
            let runtime = concurrency_runtime(&handle, shared_cache);
            let paths = run_concurrency_clients(&runtime, sessions, &pool);
            let stats = runtime.stats();
            drop(runtime);
            let queries = (sessions * pool.len()) as f64;
            println!(
                "host_concurrency/{label}/{sessions}: {queries} queries, {paths} paths, \
                 virtual makespan {} cycles ({:.2} queries/kcycle), cache hit rate {:.2}, \
                 per-CU jobs {:?}",
                stats.virtual_makespan_cycles,
                queries / (stats.virtual_makespan_cycles.max(1) as f64 / 1e3),
                stats.cache_hit_rate(),
                stats.per_cu_jobs,
            );
            group.bench_with_input(BenchmarkId::new(label, sessions), &sessions, |b, &sessions| {
                b.iter(|| {
                    let runtime = concurrency_runtime(&handle, shared_cache);
                    black_box(run_concurrency_clients(&runtime, sessions, &pool))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_host_concurrency);
criterion_main!(benches);
