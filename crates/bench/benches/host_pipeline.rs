//! Host-pipeline benches (not a paper figure): the per-query cost of the
//! host runtime pieces that surround the enumeration — payload serialisation,
//! DMA framing and batched scheduling — so the end-to-end claims of the
//! Section VII-A methodology (transfer time is negligible, batching amortises
//! the setup cost) can be checked against measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::bench_scale;
use pefp_core::{pre_bfs, pre_bfs_with, PefpVariant, PrepareContext};
use pefp_graph::sampling::sample_reachable_pairs;
use pefp_graph::{Dataset, VertexId};
use pefp_host::binfmt::{decode_payload, encode_payload};
use pefp_host::{BatchScheduler, GraphHandle, QueryRequest, SchedulerConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_payload_codec(c: &mut Criterion) {
    let g = Dataset::SocEpinions.generate(bench_scale()).to_csr();
    let pairs = sample_reachable_pairs(&g, 5, 1, 3);
    let Some(&(s, t)) = pairs.first() else { return };
    let prepared = pre_bfs(&g, s, t, 5);
    let encoded = encode_payload(&prepared);

    let mut group = c.benchmark_group("host_payload");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("encode", encoded.len()), |b| {
        b.iter(|| black_box(encode_payload(black_box(&prepared)).len()))
    });
    group.bench_function(BenchmarkId::new("decode", encoded.len()), |b| {
        b.iter(|| black_box(decode_payload(black_box(&encoded)).unwrap().graph.num_edges()))
    });
    group.finish();
}

fn bench_batch_scheduler(c: &mut Criterion) {
    let handle =
        GraphHandle::from_csr("SE-tiny", Dataset::SocEpinions.generate(bench_scale()).to_csr());
    let k = 4;
    let requests: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, 16, 9)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    if requests.is_empty() {
        return;
    }

    let mut group = c.benchmark_group("host_batch");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let scheduler = BatchScheduler::new(SchedulerConfig {
            preprocess_threads: threads,
            variant: PefpVariant::Full,
            ..SchedulerConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("preprocess_threads", threads),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let outcome = scheduler.run_batch(&handle, black_box(requests)).unwrap();
                    black_box(outcome.total_paths())
                })
            },
        );
    }
    group.finish();
}

fn bench_prebfs_vs_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_prebfs");
    group.sample_size(10);
    for dataset in [Dataset::Amazon, Dataset::WikiTalk, Dataset::Skitter] {
        let g = Arc::new(dataset.generate(bench_scale()).to_csr());
        let pairs = sample_reachable_pairs(&g, 5, 1, 13);
        let Some(&(s, t)) = pairs.first() else { continue };
        group.bench_with_input(BenchmarkId::new("k5", dataset.code()), &g, |b, g| {
            b.iter(|| {
                black_box(pre_bfs(black_box(g), VertexId(s.0), VertexId(t.0), 5).graph.num_edges())
            })
        });
        let mut ctx = PrepareContext::new();
        group.bench_with_input(BenchmarkId::new("k5_ctx", dataset.code()), &g, |b, g| {
            b.iter(|| {
                black_box(
                    pre_bfs_with(&mut ctx, black_box(g), VertexId(s.0), VertexId(t.0), 5)
                        .graph
                        .num_edges(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_payload_codec, bench_batch_scheduler, bench_prebfs_vs_graph_size);
criterion_main!(benches);
