//! Result-pipeline cost: collect vs counting vs FirstN early termination.
//!
//! The paper's result sets explode (§VI sweeps reach 10⁸+ paths), so the cost
//! of *materialising* results — one `Vec` per path at every layer boundary —
//! eventually dominates enumeration itself. This bench measures the three
//! result pipelines on high-volume queries over the 10k Chung-Lu profile used
//! by `microbench`:
//!
//! * `collect` — the legacy pipeline: every path materialised and translated.
//! * `counting` — `CountingSink`: full enumeration, zero materialisation.
//! * `firstn` — `FirstN(16)`: early termination after the first 16 paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_core::{pre_bfs, run_prepared, run_prepared_with_sink, EngineOptions, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::sink::{CollectSink, CountingSink, FirstN};
use pefp_graph::{generators, VertexId};
use std::hint::black_box;

fn bench_streaming_results(c: &mut Criterion) {
    let g = generators::chung_lu(10_000, 8.0, 2.2, 3).to_csr();
    let cfg = DeviceConfig::alveo_u200();
    // Hub-to-hub queries with large result sets (probed: ~4.5k and ~26.5k
    // paths respectively).
    let cases = [(VertexId(0), VertexId(3), 7u32), (VertexId(0), VertexId(3), 8)];

    let mut group = c.benchmark_group("streaming_results");
    group.sample_size(10);
    for (s, t, k) in cases {
        let prep = pre_bfs(&g, s, t, k);
        let collect_opts =
            EngineOptions { collect_paths: true, ..PefpVariant::Full.engine_options() };
        let counting_opts =
            EngineOptions { collect_paths: false, ..PefpVariant::Full.engine_options() };

        group.bench_with_input(BenchmarkId::new("collect", k), &prep, |b, prep| {
            b.iter(|| black_box(run_prepared(prep, collect_opts.clone(), &cfg).paths.len()))
        });
        group.bench_with_input(BenchmarkId::new("counting", k), &prep, |b, prep| {
            b.iter(|| black_box(run_prepared(prep, counting_opts.clone(), &cfg).num_paths))
        });
        // Explicit sink forms of the same pipelines.
        group.bench_with_input(BenchmarkId::new("counting_sink", k), &prep, |b, prep| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                run_prepared_with_sink(prep, counting_opts.clone(), &cfg, &mut sink);
                black_box(sink.count())
            })
        });
        group.bench_with_input(BenchmarkId::new("firstn16", k), &prep, |b, prep| {
            b.iter(|| {
                let mut sink = FirstN::new(16, CollectSink::new());
                run_prepared_with_sink(prep, counting_opts.clone(), &cfg, &mut sink);
                black_box(sink.emitted())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_results);
criterion_main!(benches);
