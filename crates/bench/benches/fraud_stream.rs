//! Closed-loop fraud-stream benchmark: a `RuntimeCycleDetector` ingesting
//! the fixed `BENCH_06` transaction workload through a shared `HostRuntime`,
//! where every transaction becomes an incremental `GraphDelta` (window
//! expiries + the new edge) and a pre-insert k-hop cycle query against the
//! current epoch's snapshot — the paper's Section I scenario run end to end
//! on the dynamic-graph stack instead of per-query CSR rebuilds.
//!
//! The untimed header run prints the simulated domain (detected cycles,
//! final epoch, device cycles, p99 per-transaction latency) plus the
//! sustained tx/sec under the `BENCH_06` p99 budget, which is what the
//! `bench_gate --check BENCH_06.json` floor enforces in CI.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pefp_bench::gate::{fraud_stream_workload, FRAUD_P99_BUDGET_MS, FRAUD_STREAM_TXS};
use pefp_host::RuntimeConfig;
use pefp_streaming::{RuntimeCycleDetector, RuntimeDetectorConfig};
use std::hint::black_box;
use std::time::Instant;

fn detector() -> RuntimeCycleDetector {
    RuntimeCycleDetector::new(RuntimeDetectorConfig {
        max_cycle_hops: 6,
        window_size: 10_000,
        runtime: RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
    })
}

fn bench_fraud_stream(c: &mut Criterion) {
    let txs = fraud_stream_workload();

    // Untimed closed-loop round reporting the simulated/latency domain.
    {
        let mut det = detector();
        let round = Instant::now();
        let mut latencies_ms: Vec<f64> = txs
            .iter()
            .map(|tx| {
                let started = Instant::now();
                black_box(det.ingest(tx).cycles.len());
                started.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        let elapsed = round.elapsed().as_secs_f64();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p99 = latencies_ms[(latencies_ms.len() * 99).div_ceil(100) - 1];
        let stats = det.stats();
        println!(
            "fraud_stream/closed_loop: {} txs, {} cycles detected, recall {:.2}, \
             final epoch {}, {} device cycles, p99 {:.3} ms (budget {FRAUD_P99_BUDGET_MS} ms), \
             sustained {:.0} tx/s",
            FRAUD_STREAM_TXS,
            stats.cycles,
            det.fraud_recall(),
            det.epoch(),
            det.runtime().stats().total_device_cycles,
            p99,
            if p99 <= FRAUD_P99_BUDGET_MS { txs.len() as f64 / elapsed.max(1e-9) } else { 0.0 },
        );
    }

    let mut group = c.benchmark_group("fraud_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FRAUD_STREAM_TXS as u64));
    group.bench_function("closed_loop", |b| {
        b.iter(|| {
            let mut det = detector();
            let mut detected = 0usize;
            for tx in &txs {
                detected += det.ingest(tx).cycles.len();
            }
            black_box(detected)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fraud_stream);
criterion_main!(benches);
