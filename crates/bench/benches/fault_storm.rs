//! Fault-storm benchmark: the fixed `BENCH_07` query pool on a 2-CU
//! `HostRuntime` running under the seeded fault mix (transient DRAM
//! corruption, flaky PCIe, watchdog-length hangs, hard crashes), with
//! retries, circuit-breaker quarantine and CPU degradation enabled.
//!
//! The untimed header run prints the correctness and fault-telemetry domain
//! (answers vs the fault-free oracle, faults seen, retries, quarantines,
//! fallbacks) plus the goodput figure the `bench_gate --check BENCH_07.json`
//! floor enforces in CI: correct queries per wall second, with a hard 1.0
//! floor on the correct-answer fraction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pefp_bench::gate::{
    fault_storm_workload, run_fault_storm_cases, FAULT_STORM_GOODPUT_FLOOR, FAULT_STORM_QUERIES,
    FAULT_STORM_RATES, FAULT_STORM_SEED,
};
use pefp_fpga::FaultPlan;
use pefp_host::{FaultToleranceConfig, HostRuntime, RuntimeConfig};
use std::hint::black_box;

fn bench_fault_storm(c: &mut Criterion) {
    // Untimed gate round reporting the correctness/telemetry domain.
    {
        let cases = run_fault_storm_cases();
        for case in &cases {
            if let Some(floor) = &case.floor {
                println!(
                    "{}: median {:.0} ns, {} {:.2} (floor {:.2})",
                    case.name, case.median_ns, floor.label, floor.value, floor.min
                );
            }
        }
        println!(
            "fault_storm: {} queries, seed {}, goodput floor {} q/s",
            FAULT_STORM_QUERIES, FAULT_STORM_SEED, FAULT_STORM_GOODPUT_FLOOR
        );
    }

    let (handle, requests) = fault_storm_workload();
    let mut group = c.benchmark_group("fault_storm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FAULT_STORM_QUERIES as u64));
    group.bench_function("round", |b| {
        b.iter(|| {
            let runtime = HostRuntime::launch(
                handle.clone(),
                RuntimeConfig {
                    compute_units: 2,
                    fault_plan: Some(FaultPlan::seeded(FAULT_STORM_SEED, FAULT_STORM_RATES, 2)),
                    fault_tolerance: FaultToleranceConfig {
                        retry_backoff: std::time::Duration::ZERO,
                        watchdog_cycle_budget: Some(50_000_000),
                        ..FaultToleranceConfig::default()
                    },
                    ..RuntimeConfig::default()
                },
            );
            let session = runtime.register_session();
            let mut total = 0u64;
            for &req in &requests {
                total += runtime
                    .submit_query(session, req, false)
                    .expect("storm query admitted")
                    .wait()
                    .expect("storm query completes despite faults")
                    .num_paths;
            }
            let stats = runtime.stats();
            black_box((total, stats.device_faults, stats.cpu_fallbacks))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_storm);
criterion_main!(benches);
