//! Fig. 12–15 — ablation benches: the full PEFP system against each variant
//! with one technique disabled.
//!
//! The primary metric of these figures is *simulated device time*, which the
//! `figures` binary reports; this Criterion bench additionally measures the
//! host-side wall-clock of the same runs so regressions in the software
//! implementation of each technique are caught too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::{bench_scale, make_runner};
use pefp_core::{prepare, run_prepared, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::Dataset;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let device = DeviceConfig::alveo_u200();
    // (figure, dataset, k, degraded variant)
    let cases = [
        ("fig12_prebfs", Dataset::BerkStan, 5u32, PefpVariant::NoPreBfs),
        ("fig12_prebfs", Dataset::Baidu, 5, PefpVariant::NoPreBfs),
        ("fig13_batchdfs", Dataset::BerkStan, 5, PefpVariant::NoBatchDfs),
        ("fig13_batchdfs", Dataset::Baidu, 5, PefpVariant::NoBatchDfs),
        ("fig14_cache", Dataset::Reactome, 5, PefpVariant::NoCache),
        ("fig14_cache", Dataset::WebGoogle, 5, PefpVariant::NoCache),
        ("fig15_datasep", Dataset::Reactome, 5, PefpVariant::NoDataSep),
        ("fig15_datasep", Dataset::WebGoogle, 5, PefpVariant::NoDataSep),
    ];

    for (figure, dataset, k, degraded) in cases {
        if runner.exceeds_budget(dataset, k) {
            continue;
        }
        let g = runner.graph(dataset).clone();
        let queries = runner.queries(dataset, k);
        let Some(q) = queries.first().copied() else { continue };

        let mut group = c.benchmark_group(figure);
        group.sample_size(10);
        for variant in [PefpVariant::Full, degraded] {
            let prep = prepare(&g, q.s, q.t, k, variant);
            let mut opts = variant.engine_options();
            opts.collect_paths = false;
            group.bench_with_input(BenchmarkId::new(variant.name(), dataset.code()), &k, |b, _| {
                b.iter(|| black_box(run_prepared(&prep, opts.clone(), &device).device.cycles))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
