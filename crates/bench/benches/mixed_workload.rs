//! Mixed-workload routing: the adaptive router against every fixed engine.
//!
//! The cases mirror the `BENCH_08` gate (`pefp_bench::gate`): the 24-tiny +
//! 5-heavy query pool on the 10k Chung-Lu profile, served closed-loop by a
//! 2-CU `HostRuntime` under five policies — the adaptive router (builtin
//! table), device-always (`routing: None`, the pre-router behaviour),
//! bc-dfs-always, join-always, and the best-CPU oracle (device-excluding
//! table, cheapest CPU engine per query). The summed serve latency
//! (transfer + engine time, the quantity the router's cost model predicts)
//! is printed per policy so the routing win is visible next to the
//! wall-clock medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::gate::{
    bcdfs_forcing_table, cpu_forcing_table, join_forcing_table, mixed_round_millis, mixed_runtime,
    mixed_workload_pools,
};
use pefp_core::RoutingTable;
use std::hint::black_box;

fn bench_mixed_workload(c: &mut Criterion) {
    let (handle, tiny, heavy) = mixed_workload_pools();
    let mixed: Vec<_> = tiny.iter().chain(heavy.iter()).copied().collect();
    let policies: [(&str, Option<RoutingTable>); 5] = [
        ("router", Some(RoutingTable::builtin())),
        ("device_always", None),
        ("bc_dfs_always", Some(bcdfs_forcing_table())),
        ("join_always", Some(join_forcing_table())),
        ("cpu_best", Some(cpu_forcing_table())),
    ];

    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    for (name, routing) in &policies {
        // One untimed round to report the modelled serve-latency domain.
        let runtime = mixed_runtime(&handle, routing.clone());
        let serve_millis = mixed_round_millis(&runtime, &mixed);
        let stats = runtime.stats();
        println!(
            "mixed_workload/{name}: serve latency {serve_millis:.3} ms \
             ({} cpu-routed, {} device cycles)",
            stats.cpu_routed, stats.total_device_cycles
        );
        group.bench_with_input(BenchmarkId::new("round", *name), &mixed, |b, pool| {
            b.iter(|| {
                let runtime = mixed_runtime(&handle, routing.clone());
                black_box(mixed_round_millis(&runtime, pool))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_workload);
criterion_main!(benches);
