//! Design-space scaling benches (not a paper figure): how the simulated
//! device responds to the configuration knobs DESIGN.md calls out —
//! verification-lane count, buffer-area capacity and the Θ1/Θ2 batch sizes.
//!
//! The paper fixes one Alveo U200 configuration; these ablations justify that
//! the defaults used throughout the reproduction sit on the flat part of each
//! curve (more lanes or a bigger buffer would not change the reported
//! comparisons).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::{bench_scale, make_runner};
use pefp_core::{prepare, run_prepared, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::Dataset;
use std::hint::black_box;

fn bench_verification_lanes(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let dataset = Dataset::BerkStan;
    let k = 5;
    let g = runner.graph(dataset).clone();
    let Some(q) = runner.queries(dataset, k).first().copied() else { return };
    let prep = prepare(&g, q.s, q.t, k, PefpVariant::Full);
    let mut opts = PefpVariant::Full.engine_options();
    opts.collect_paths = false;

    let mut group = c.benchmark_group("scaling_lanes");
    group.sample_size(10);
    for lanes in [1usize, 4, 16, 64] {
        let mut device = DeviceConfig::alveo_u200();
        device.verification_lanes = lanes;
        group.bench_with_input(BenchmarkId::new("BS_k5", lanes), &lanes, |b, _| {
            b.iter(|| black_box(run_prepared(&prep, opts.clone(), &device).device.cycles))
        });
    }
    group.finish();
}

fn bench_buffer_capacity(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let dataset = Dataset::Baidu;
    let k = 6;
    let g = runner.graph(dataset).clone();
    let Some(q) = runner.queries(dataset, k).first().copied() else { return };
    let prep = prepare(&g, q.s, q.t, k, PefpVariant::Full);
    let device = DeviceConfig::alveo_u200();

    let mut group = c.benchmark_group("scaling_buffer");
    group.sample_size(10);
    for buffer in [256usize, 1_024, 8_192, 32_768] {
        let mut opts = PefpVariant::Full.engine_options();
        opts.buffer_capacity = buffer;
        opts.dram_fetch_batch = (buffer / 2).max(1);
        opts.collect_paths = false;
        group.bench_with_input(BenchmarkId::new("BD_k6", buffer), &buffer, |b, _| {
            b.iter(|| black_box(run_prepared(&prep, opts.clone(), &device).device.cycles))
        });
    }
    group.finish();
}

fn bench_processing_capacity(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let dataset = Dataset::WikiTalk;
    let k = 5;
    let g = runner.graph(dataset).clone();
    let Some(q) = runner.queries(dataset, k).first().copied() else { return };
    let prep = prepare(&g, q.s, q.t, k, PefpVariant::Full);
    let device = DeviceConfig::alveo_u200();

    let mut group = c.benchmark_group("scaling_theta2");
    group.sample_size(10);
    for theta2 in [64u32, 256, 1_024, 4_096] {
        let mut opts = PefpVariant::Full.engine_options();
        opts.processing_capacity = theta2;
        opts.collect_paths = false;
        group.bench_with_input(BenchmarkId::new("WT_k5", theta2), &theta2, |b, _| {
            b.iter(|| black_box(run_prepared(&prep, opts.clone(), &device).device.cycles))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_verification_lanes,
    bench_buffer_capacity,
    bench_processing_capacity
);
criterion_main!(benches);
