//! Fig. 10 / Fig. 11 — total time (preprocessing + query), PEFP vs JOIN.
//!
//! Measures the end-to-end pipeline of both systems on the four Fig. 10
//! datasets plus the Fig. 11 fixed-k setting. For PEFP the measured work is
//! the host preprocessing plus the full software enumeration that drives the
//! simulated device; the simulated device time itself is reported by the
//! `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_baselines::Join;
use pefp_bench::{bench_scale, make_runner};
use pefp_core::{run_query, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::Dataset;
use std::hint::black_box;

fn bench_total_time(c: &mut Criterion) {
    let mut runner = make_runner(bench_scale(), 3);
    let device = DeviceConfig::alveo_u200();
    let cases = [
        (Dataset::Amazon, 8u32),
        (Dataset::WikiTalk, 4),
        (Dataset::Skitter, 5),
        (Dataset::TwitterSocial, 5),
        // Fig. 11 representatives at k = 5.
        (Dataset::SocEpinions, 5),
        (Dataset::WebGoogle, 5),
    ];

    let mut group = c.benchmark_group("fig10_total_time");
    group.sample_size(10);
    for (dataset, k) in cases {
        if runner.exceeds_budget(dataset, k) {
            continue;
        }
        let g = runner.graph(dataset).clone();
        let queries = runner.queries(dataset, k);
        let Some(q) = queries.first().copied() else { continue };

        group.bench_with_input(BenchmarkId::new("PEFP", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(run_query(&g, q.s, q.t, k, PefpVariant::Full, &device).num_paths))
        });
        group.bench_with_input(BenchmarkId::new("JOIN", dataset.code()), &k, |b, _| {
            b.iter(|| black_box(Join::new().enumerate(&g, q.s, q.t, k).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_total_time);
criterion_main!(benches);
