//! Multi-CU dispatch: measured batch execution at 1/2/4 compute units.
//!
//! The cases mirror the bench-regression gate (`pefp_bench::gate`): the 56
//! hub-pair queries at k=6 on the 10k Chung-Lu profile, executed in
//! dispatch mode — real OS threads, one per CU, behind the shared-DRAM
//! arbiter. Wall-clock here includes host preprocessing and the thread
//! fan-out; the simulated speedup (serial cycles / measured makespan) is
//! printed alongside so both domains are visible in one run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::gate::{dispatch_scheduler, gate_batch, gate_graph};
use std::hint::black_box;

fn bench_multi_cu(c: &mut Criterion) {
    let handle = gate_graph();
    let requests = gate_batch(&handle);

    let mut group = c.benchmark_group("multi_cu");
    group.sample_size(10);
    for cus in [1usize, 2, 4] {
        let scheduler = dispatch_scheduler(cus);
        // One untimed run to report the simulated-cycle domain.
        let outcome = scheduler.run_batch(&handle, &requests).expect("dispatch batch");
        let measured = outcome.measured.as_ref().expect("dispatch is measured");
        println!(
            "multi_cu/dispatch/{cus}: measured makespan {} cycles, serial {} cycles, \
             speedup {:.2}x, predicted {} cycles (model error {:.1}%)",
            measured.makespan_cycles,
            measured.serial_cycles,
            measured.speedup(),
            measured.predicted.makespan_cycles,
            measured.model_error() * 100.0
        );
        group.bench_with_input(BenchmarkId::new("dispatch", cus), &requests, |b, requests| {
            b.iter(|| {
                let outcome = scheduler.run_batch(&handle, requests).expect("dispatch batch");
                black_box(outcome.total_paths())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_cu);
criterion_main!(benches);
