//! Bank-aware CSR placement under charged DRAM banking: natural vs
//! heat-clustered row layout at 2 and 4 compute units.
//!
//! The cases mirror the `BENCH_10` gate (`pefp_bench::gate`): the 56
//! hub-pair queries at k=6 on the 10k Chung-Lu profile, run in dispatch
//! mode with BRAM graph caching off (rows stream from DRAM) and
//! bank-conflict/turnaround charging on — the one configuration where a
//! row's bank assignment costs simulated time. The untimed header line
//! reports the simulated domain: charged conflict cycles and the LPT
//! makespan under both placements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_bench::gate::{charged_nocache_scheduler, gate_batch, gate_graph, BANK_LAYOUT_CUS};
use pefp_graph::PlacementPolicy;
use std::hint::black_box;

fn bench_bank_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_layout");
    group.sample_size(10);
    for cus in BANK_LAYOUT_CUS {
        for policy in [PlacementPolicy::Natural, PlacementPolicy::BankAware] {
            let handle = gate_graph().with_placement(policy);
            let requests = gate_batch(&handle);
            let scheduler = charged_nocache_scheduler(cus);
            // One untimed run to report the simulated-cycle domain.
            let outcome = scheduler.run_batch(&handle, &requests).expect("charged batch");
            let measured = outcome.measured.as_ref().expect("dispatch is measured");
            let conflicts: u64 = measured.per_cu_bank_conflict_cycles.iter().sum();
            let turnarounds: u64 = measured.per_cu_turnaround_cycles.iter().sum();
            println!(
                "bank_layout/{}/{cus}: {conflicts} charged conflict cycles, \
                 {turnarounds} turnaround cycles, LPT makespan {} cycles \
                 (measured {}, model error {:.1}%)",
                policy.name(),
                measured.predicted.makespan_cycles,
                measured.makespan_cycles,
                measured.model_error() * 100.0
            );
            group.bench_with_input(
                BenchmarkId::new(policy.name(), cus),
                &requests,
                |b, requests| {
                    b.iter(|| {
                        let outcome =
                            scheduler.run_batch(&handle, requests).expect("charged batch");
                        black_box(outcome.total_paths())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bank_layout);
criterion_main!(benches);
