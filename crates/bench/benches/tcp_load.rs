//! Open-loop TCP load benchmark: the BENCH_09 workload — binary-protocol
//! COUNT requests at a fixed arrival rate over hundreds of concurrent
//! loopback connections into one shared `HostRuntime` behind the
//! `NetServer` front door.
//!
//! The profile scales with `PEFP_BENCH_SCALE` (tiny is the CI smoke size;
//! the full gate profile of 256 connections at 1000 req/s runs at medium —
//! wall budgets per scale are recorded in this crate's `README.md`). The
//! untimed header round prints the latency histogram and goodput that the
//! `bench_gate --check BENCH_09.json` floors enforce in CI.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pefp_bench::bench_scale;
use pefp_bench::gate;
use pefp_bench::loadgen::{run_open_loop, LoadConfig, LoadProtocol};
use pefp_graph::ScaleProfile;
use pefp_host::{HostRuntime, NetConfig, NetServer, QueryRequest, RuntimeConfig};
use std::sync::Arc;

/// `(connections, rate_per_sec, requests)` per scale profile.
fn load_profile() -> (usize, f64, usize) {
    match bench_scale() {
        ScaleProfile::Tiny => (32, 800.0, 400),
        ScaleProfile::Small => (128, 1_500.0, 1_500),
        _ => (gate::TCP_LOAD_CONNECTIONS, gate::TCP_LOAD_RATE_PER_SEC, gate::TCP_LOAD_REQUESTS),
    }
}

/// A warm front door over the BENCH_09 gate runtime.
fn front_door() -> NetServer {
    let runtime = HostRuntime::launch(
        gate::gate_graph(),
        RuntimeConfig { compute_units: 4, queue_capacity: 4096, ..RuntimeConfig::default() },
    );
    let session = runtime.register_session();
    for (s, t, k) in gate::tcp_load_pool() {
        runtime
            .submit_query(session, QueryRequest::new(s, t, k), false)
            .expect("warm query admitted")
            .wait()
            .expect("warm query completes");
    }
    NetServer::bind(Arc::clone(&runtime), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback front door")
}

fn bench_tcp_load(c: &mut Criterion) {
    let (connections, rate_per_sec, requests) = load_profile();
    let make_config = |protocol| LoadConfig {
        connections,
        rate_per_sec,
        requests,
        protocol,
        pool: gate::tcp_load_pool(),
    };

    // Untimed header round per protocol: the figures the BENCH_09 gate
    // floors (goodput, answered fraction) and budget (p999) act on.
    let server = front_door();
    for protocol in [LoadProtocol::Binary, LoadProtocol::Line] {
        let report =
            run_open_loop(server.local_addr(), &make_config(protocol)).expect("header round");
        println!(
            "tcp_load[{}]: {} conns at {:.0}/s: ok={} busy={} errors={} goodput={:.1}/s \
             p50={:.2}ms p99={:.2}ms p999={:.2}ms",
            protocol.name(),
            connections,
            rate_per_sec,
            report.completed_ok,
            report.busy,
            report.protocol_errors,
            report.goodput_per_sec,
            report.p50_ns as f64 / 1e6,
            report.p99_ns as f64 / 1e6,
            report.p999_ns as f64 / 1e6
        );
        assert_eq!(report.protocol_errors, 0, "{}: load round must be error-free", protocol.name());
    }

    let mut group = c.benchmark_group("tcp_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests as u64));
    group.bench_function("open_loop_round", |b| {
        b.iter(|| {
            let report = run_open_loop(server.local_addr(), &make_config(LoadProtocol::Binary))
                .expect("load round");
            assert_eq!(report.protocol_errors, 0);
            std::hint::black_box(report.completed_ok)
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_tcp_load);
criterion_main!(benches);
