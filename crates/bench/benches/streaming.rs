//! Streaming cycle-detection throughput (the paper's motivating application,
//! not a numbered figure): per-transaction detection cost with the PEFP
//! engine on the simulated device versus the JOIN CPU baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pefp_streaming::{
    CycleDetector, DetectorConfig, DetectorEngine, TransactionGenerator, TransactionGeneratorConfig,
};
use std::hint::black_box;

fn bench_detector_engines(c: &mut Criterion) {
    let stream = TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: 400,
        fraud_probability: 0.03,
        ring_size: 4,
        seed: 77,
    })
    .stream(400);

    let mut group = c.benchmark_group("streaming_detection");
    group.sample_size(10);
    for engine in [DetectorEngine::PefpSimulated, DetectorEngine::JoinCpu, DetectorEngine::NaiveDfs]
    {
        let label = match engine {
            DetectorEngine::PefpSimulated => "pefp",
            DetectorEngine::JoinCpu => "join",
            DetectorEngine::NaiveDfs => "naive",
        };
        group.bench_with_input(BenchmarkId::new(label, stream.len()), &stream, |b, stream| {
            b.iter(|| {
                let mut detector = CycleDetector::new(DetectorConfig {
                    max_cycle_hops: 5,
                    window_size: 10_000,
                    engine,
                    ..DetectorConfig::default()
                });
                let alerts = detector.ingest_stream(black_box(stream));
                black_box(alerts.len())
            })
        });
    }
    group.finish();
}

fn bench_window_maintenance(c: &mut Criterion) {
    let stream = TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: 2_000,
        fraud_probability: 0.0,
        ring_size: 4,
        seed: 5,
    })
    .stream(5_000);

    let mut group = c.benchmark_group("streaming_window");
    group.sample_size(10);
    for window in [100u64, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("ingest", window), &window, |b, &window| {
            b.iter(|| {
                let mut w = pefp_streaming::SlidingWindow::new(window);
                for tx in &stream {
                    w.ingest(black_box(tx));
                }
                black_box(w.graph().num_edges())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detector_engines, bench_window_maintenance);
criterion_main!(benches);
