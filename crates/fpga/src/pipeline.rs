//! HLS-style pipeline and dataflow cost model.
//!
//! High-level synthesis schedules a loop of `n` iterations into a pipeline of
//! depth `d` (latency of one iteration) and initiation interval `ii` (cycles
//! between consecutive iteration starts). Total cycles are `d + (n-1)*ii`.
//! A *dataflow region* lets independent stages run concurrently, so the cost
//! of the region is the maximum of the stage costs rather than their sum —
//! this is exactly the benefit the paper's data-separation technique buys for
//! the path-verification module (Section VI-D).

use serde::{Deserialize, Serialize};

/// Description of one pipelined loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Pipeline depth: latency in cycles of a single iteration.
    pub depth: u64,
    /// Initiation interval: cycles between consecutive iteration starts
    /// (1 when the loop is fully pipelined).
    pub initiation_interval: u64,
}

impl PipelineSpec {
    /// A fully pipelined loop (II = 1) of the given depth.
    pub fn fully_pipelined(depth: u64) -> Self {
        PipelineSpec { depth, initiation_interval: 1 }
    }

    /// A loop that cannot be pipelined at all (II = depth).
    pub fn unpipelined(depth: u64) -> Self {
        PipelineSpec { depth, initiation_interval: depth }
    }

    /// Cycles needed to run `iterations` iterations of this loop.
    pub fn cycles(&self, iterations: u64) -> u64 {
        pipeline_cycles(iterations, self.depth, self.initiation_interval)
    }
}

/// Cycles for a pipelined loop: `depth + (n - 1) * ii`, or 0 when `n == 0`.
pub fn pipeline_cycles(iterations: u64, depth: u64, initiation_interval: u64) -> u64 {
    if iterations == 0 {
        0
    } else {
        depth + (iterations - 1) * initiation_interval.max(1)
    }
}

/// Cycles for a dataflow region whose stages run concurrently: the maximum of
/// the stage costs (0 for an empty region).
pub fn dataflow_cycles(stage_cycles: &[u64]) -> u64 {
    stage_cycles.iter().copied().max().unwrap_or(0)
}

/// Cycles for the same stages executed *sequentially* (the unoptimised
/// baseline the paper compares data separation against).
pub fn sequential_cycles(stage_cycles: &[u64]) -> u64 {
    stage_cycles.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_pipelined_loop_costs_depth_plus_n_minus_one() {
        assert_eq!(pipeline_cycles(1, 5, 1), 5);
        assert_eq!(pipeline_cycles(100, 5, 1), 104);
        assert_eq!(pipeline_cycles(0, 5, 1), 0);
    }

    #[test]
    fn unpipelined_loop_is_linear_in_depth() {
        let spec = PipelineSpec::unpipelined(4);
        assert_eq!(spec.cycles(10), 4 + 9 * 4);
    }

    #[test]
    fn dataflow_takes_the_maximum_stage() {
        assert_eq!(dataflow_cycles(&[10, 30, 20]), 30);
        assert_eq!(dataflow_cycles(&[]), 0);
    }

    #[test]
    fn dataflow_beats_sequential_whenever_there_are_multiple_stages() {
        let stages = [12, 7, 9];
        assert!(dataflow_cycles(&stages) < sequential_cycles(&stages));
        assert_eq!(sequential_cycles(&stages), 28);
    }

    #[test]
    fn zero_initiation_interval_is_treated_as_one() {
        assert_eq!(pipeline_cycles(10, 3, 0), 3 + 9);
    }

    #[test]
    fn spec_constructors() {
        assert_eq!(PipelineSpec::fully_pipelined(3).initiation_interval, 1);
        assert_eq!(PipelineSpec::unpipelined(3).initiation_interval, 3);
    }
}
