//! Multiple compute units (CUs) on one card.
//!
//! The paper instantiates a single PEFP kernel. A natural extension — and the
//! obvious way to serve the batched workloads of Section VII-A faster — is to
//! place several independent kernel instances (compute units, in Vitis
//! terminology) on the same card, each with its own BRAM areas, and to
//! distribute the queries of a batch across them. The card's DRAM bandwidth
//! is shared, so the speedup saturates once the aggregated traffic of the CUs
//! exceeds what the memory system can deliver.
//!
//! Two generations of that model live here:
//!
//! * [`schedule_batch`] (PR 3) — the closed-form *prediction*:
//!   longest-processing-time scheduling of per-query kernel times onto `n`
//!   CUs, inflated end-to-end by the bandwidth-sharing factor.
//! * [`CuCluster`] + [`predict_dispatch`] (this PR) — *execution*: the
//!   cluster instantiates `n` independent simulated devices (own BRAM
//!   areas, counters and clock) behind one shared [`DramArbiter`] that
//!   meters every refill, and the traffic-aware predictor inflates only the
//!   DRAM-bus share of each CU's cycles, matching what the arbiter actually
//!   charges when every CU is busy.
//!
//! [`max_compute_units`] is the resource check for how many CUs fit the card.

use crate::arbiter::{ArbiterHandle, DramArbiter};
use crate::banks::{DramBanks, Interleaving};
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::fault::FaultPlan;
use crate::resources::{ModuleCosts, OnChipAreas, ResourceBudget, ResourceEstimate};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Configuration of a multi-CU deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiCuConfig {
    /// Number of compute units instantiated.
    pub compute_units: usize,
    /// Fraction of the total DRAM bandwidth one CU can absorb on its own
    /// (e.g. 0.5 means two CUs already saturate the memory system).
    pub per_cu_bandwidth_share: f64,
    /// Charge the bank model's conflict and read↔write turnaround cycles to
    /// CU clocks instead of only metering them. Off by default: the
    /// pre-charging cycle counts (and the BENCH_04 baseline) are reproduced
    /// exactly when this is false.
    pub charge_banked: bool,
}

impl Default for MultiCuConfig {
    fn default() -> Self {
        MultiCuConfig { compute_units: 1, per_cu_bandwidth_share: 0.5, charge_banked: false }
    }
}

/// Predicted execution of one batch on a multi-CU card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCuSchedule {
    /// Number of compute units used.
    pub compute_units: usize,
    /// Cycles each CU is busy (after bandwidth correction), indexed by CU.
    pub per_cu_cycles: Vec<u64>,
    /// The batch makespan in cycles (the maximum over CUs).
    pub makespan_cycles: u64,
    /// Sum of the uncorrected per-query cycles (the single-CU makespan).
    pub serial_cycles: u64,
    /// The bandwidth-contention factor that was applied (≥ 1.0).
    pub contention_factor: f64,
}

impl MultiCuSchedule {
    /// Speedup of the schedule over running every query on one CU.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.makespan_cycles as f64
        }
    }
}

/// Schedules a batch of per-query kernel cycle counts onto the CUs of
/// `config` using longest-processing-time-first assignment, then inflates the
/// result by the DRAM-contention factor
/// `max(1, active_cus × per_cu_bandwidth_share)`.
pub fn schedule_batch(query_cycles: &[u64], config: &MultiCuConfig) -> MultiCuSchedule {
    let cus = config.compute_units.max(1);
    let serial_cycles: u64 = query_cycles.iter().sum();

    // LPT: sort descending, always give the next query to the least-loaded CU.
    let mut sorted: Vec<u64> = query_cycles.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut per_cu = vec![0u64; cus];
    for cycles in sorted {
        let min_idx =
            per_cu.iter().enumerate().min_by_key(|(_, &load)| load).map(|(i, _)| i).unwrap_or(0);
        per_cu[min_idx] += cycles;
    }

    let active_cus = per_cu.iter().filter(|&&load| load > 0).count().max(1);
    let contention_factor = (active_cus as f64 * config.per_cu_bandwidth_share).max(1.0);
    let per_cu_cycles: Vec<u64> =
        per_cu.iter().map(|&c| (c as f64 * contention_factor).round() as u64).collect();
    let makespan_cycles = per_cu_cycles.iter().copied().max().unwrap_or(0);

    MultiCuSchedule {
        compute_units: cus,
        per_cu_cycles,
        makespan_cycles,
        serial_cycles,
        contention_factor,
    }
}

/// Uncontended cost of one query as observed on a single CU, used by the
/// traffic-aware [`predict_dispatch`] model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuWorkload {
    /// Total kernel cycles of the query without bandwidth contention.
    pub cycles: u64,
    /// The subset of `cycles` spent on the shared DRAM bus (burst reads and
    /// writes of intermediate paths, spills and results) — the only part a
    /// saturated memory system can slow down.
    pub dram_cycles: u64,
    /// Banked stall cycles (conflicts + turnarounds) the query paid under
    /// charging, *excluded* from `cycles`. 0 with banked charging off, so
    /// the predictor reproduces its pre-charging output exactly.
    pub bank_stall_cycles: u64,
}

/// Predicts a dispatch-mode batch execution: LPT assignment of the queries'
/// uncontended cycle counts onto the CUs, with the contention factor
/// `max(1, active_cus × per_cu_bandwidth_share)` applied to each CU's
/// *DRAM-bus cycles only* — the same per-refill law the [`DramArbiter`]
/// enforces during real execution, assuming every CU stays busy for the
/// whole makespan. When banked charging is on, each query additionally
/// carries the conflict + turnaround stall it was observed to pay
/// ([`CuWorkload::bank_stall_cycles`]), added back verbatim: bank stalls
/// are latency the CU really idles through, independent of how many
/// neighbours share the bus.
pub fn predict_dispatch(work: &[CuWorkload], config: &MultiCuConfig) -> MultiCuSchedule {
    let cus = config.compute_units.max(1);
    let serial_cycles: u64 = work.iter().map(|w| w.cycles + w.bank_stall_cycles).sum();

    let mut sorted: Vec<CuWorkload> = work.to_vec();
    sorted.sort_unstable_by_key(|w| std::cmp::Reverse(w.cycles + w.bank_stall_cycles));
    let mut per_cu = vec![CuWorkload::default(); cus];
    for w in sorted {
        let min_idx = per_cu
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.cycles + load.bank_stall_cycles)
            .map(|(i, _)| i)
            .unwrap_or(0);
        per_cu[min_idx].cycles += w.cycles;
        per_cu[min_idx].dram_cycles += w.dram_cycles;
        per_cu[min_idx].bank_stall_cycles += w.bank_stall_cycles;
    }

    let active_cus =
        per_cu.iter().filter(|load| load.cycles + load.bank_stall_cycles > 0).count().max(1);
    let contention_factor = (active_cus as f64 * config.per_cu_bandwidth_share).max(1.0);
    let per_cu_cycles: Vec<u64> = per_cu
        .iter()
        .map(|load| {
            load.cycles
                + load.bank_stall_cycles
                + ((contention_factor - 1.0) * load.dram_cycles as f64) as u64
        })
        .collect();
    let makespan_cycles = per_cu_cycles.iter().copied().max().unwrap_or(0);

    MultiCuSchedule {
        compute_units: cus,
        per_cu_cycles,
        makespan_cycles,
        serial_cycles,
        contention_factor,
    }
}

/// `n` independent simulated compute units behind one shared DRAM arbiter.
///
/// Each device built by [`CuCluster::device_for_cu`] owns its BRAM areas,
/// traffic counters and cycle clock — exactly like the single-CU
/// [`Device::new`] — but reports every DRAM transfer to the cluster's
/// [`DramArbiter`], which injects contention stalls while other CUs are
/// active. The cluster is `Send + Sync`, so the host can hand one CU to each
/// worker thread.
#[derive(Debug)]
pub struct CuCluster {
    device_config: DeviceConfig,
    multi_cu: MultiCuConfig,
    arbiter: Arc<DramArbiter>,
    /// CU lease table (`true` = checked out): concurrent jobs reserve a CU
    /// through [`CuCluster::checkout`] so no two ever alias one device slot.
    leased: Mutex<Vec<bool>>,
    /// Woken when a lease is returned.
    returned: Condvar,
    /// Fault schedule applied to every device the cluster builds; `None`
    /// simulates perfect hardware (the pre-fault behaviour).
    fault_plan: Option<Arc<FaultPlan>>,
}

impl CuCluster {
    /// Builds a cluster of `multi_cu.compute_units` CUs with the given
    /// per-device profile. The shared arbiter routes every refill through a
    /// U200-style 4-bank round-robin interleaving map (stripe width and
    /// latencies from the device profile), so per-bank conflict accounting is
    /// available in [`DramArbiter::stats`] next to the bandwidth-sharing law.
    pub fn new(device_config: DeviceConfig, multi_cu: MultiCuConfig) -> Self {
        Self::build(device_config, multi_cu, None)
    }

    /// Like [`CuCluster::new`], but every device the cluster builds draws its
    /// faults from `plan` — the simulated equivalent of deploying on a fleet
    /// where DRAM flips, PCIe errors and kernel hangs actually happen.
    pub fn with_faults(
        device_config: DeviceConfig,
        multi_cu: MultiCuConfig,
        plan: Arc<FaultPlan>,
    ) -> Self {
        Self::build(device_config, multi_cu, Some(plan))
    }

    fn build(
        device_config: DeviceConfig,
        multi_cu: MultiCuConfig,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        let banks = DramBanks::new(
            4,
            512,
            device_config.dram_read_latency,
            device_config.dram_burst_words_per_cycle,
            Interleaving::RoundRobin,
        );
        let arbiter = Arc::new(if multi_cu.charge_banked {
            DramArbiter::with_banks_charged(multi_cu.per_cu_bandwidth_share, banks)
        } else {
            DramArbiter::with_banks(multi_cu.per_cu_bandwidth_share, banks)
        });
        let cus = multi_cu.compute_units.max(1);
        if let Some(plan) = &fault_plan {
            assert!(
                plan.compute_units() >= cus,
                "fault plan covers {} CUs but the cluster has {cus}",
                plan.compute_units()
            );
        }
        CuCluster {
            device_config,
            multi_cu,
            arbiter,
            leased: Mutex::new(vec![false; cus]),
            returned: Condvar::new(),
            fault_plan,
        }
    }

    /// The fault schedule the cluster's devices run under, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// Reserves a free compute unit, blocking until one is returned. The
    /// lease is exclusive: while it lives, no other `checkout` can hand out
    /// the same CU, so concurrent jobs never alias a device. Dropping the
    /// lease checks the CU back in.
    pub fn checkout(&self) -> CuLease<'_> {
        let mut leased = self.leased.lock().expect("lease table poisoned");
        loop {
            if let Some(cu) = leased.iter().position(|taken| !taken) {
                leased[cu] = true;
                return CuLease { cluster: self, cu };
            }
            leased = self.returned.wait(leased).expect("lease table poisoned");
        }
    }

    /// Non-blocking [`CuCluster::checkout`]: `None` when every CU is leased.
    pub fn try_checkout(&self) -> Option<CuLease<'_>> {
        let mut leased = self.leased.lock().expect("lease table poisoned");
        let cu = leased.iter().position(|taken| !taken)?;
        leased[cu] = true;
        Some(CuLease { cluster: self, cu })
    }

    /// Reserves a *specific* compute unit without blocking: `None` when `cu`
    /// is currently leased. The host's CU-health layer uses this to steer
    /// jobs onto healthy CUs and probes onto quarantined ones.
    ///
    /// # Panics
    ///
    /// Panics when `cu` is out of range.
    pub fn try_checkout_cu(&self, cu: usize) -> Option<CuLease<'_>> {
        assert!(cu < self.compute_units(), "compute unit {cu} out of range");
        let mut leased = self.leased.lock().expect("lease table poisoned");
        if leased[cu] {
            return None;
        }
        leased[cu] = true;
        Some(CuLease { cluster: self, cu })
    }

    /// Reserves any free CU out of `candidates`, waiting up to `timeout` for
    /// one to be returned. Returns `None` on timeout or when `candidates` is
    /// empty — unlike [`CuCluster::checkout`], this can never park a caller
    /// forever on a wedged fleet, and it never hands out a CU outside the
    /// candidate set (the health layer's quarantine boundary).
    pub fn checkout_among(&self, candidates: &[usize], timeout: Duration) -> Option<CuLease<'_>> {
        if candidates.is_empty() {
            return None;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut leased = self.leased.lock().expect("lease table poisoned");
        loop {
            if let Some(&cu) = candidates.iter().find(|&&cu| !leased[cu]) {
                leased[cu] = true;
                return Some(CuLease { cluster: self, cu });
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, wait) =
                self.returned.wait_timeout(leased, remaining).expect("lease table poisoned");
            leased = guard;
            if wait.timed_out() {
                // One last scan under the reacquired lock before giving up.
                if let Some(&cu) = candidates.iter().find(|&&cu| !leased[cu]) {
                    leased[cu] = true;
                    return Some(CuLease { cluster: self, cu });
                }
                return None;
            }
        }
    }

    /// Number of CUs currently checked out.
    pub fn leased_cus(&self) -> usize {
        self.leased.lock().expect("lease table poisoned").iter().filter(|&&t| t).count()
    }

    /// Number of compute units in the cluster.
    pub fn compute_units(&self) -> usize {
        self.multi_cu.compute_units.max(1)
    }

    /// The multi-CU deployment configuration.
    pub fn multi_cu_config(&self) -> &MultiCuConfig {
        &self.multi_cu
    }

    /// The per-CU device profile.
    pub fn device_config(&self) -> &DeviceConfig {
        &self.device_config
    }

    /// The shared arbiter (for activation guards and aggregate stats).
    pub fn arbiter(&self) -> &Arc<DramArbiter> {
        &self.arbiter
    }

    /// Instantiates a fresh device for compute unit `cu` (zeroed clock and
    /// counters, own BRAM), wired to the cluster's shared DRAM arbiter.
    ///
    /// # Panics
    ///
    /// Panics when `cu` is out of range.
    pub fn device_for_cu(&self, cu: usize) -> Device {
        assert!(cu < self.compute_units(), "compute unit {cu} out of range");
        let mut device = Device::new(self.device_config.clone());
        device.attach_arbiter(ArbiterHandle::new(Arc::clone(&self.arbiter), cu));
        if let Some(plan) = &self.fault_plan {
            device.attach_fault_injector(plan.injector_for(cu));
        }
        device
    }
}

/// An exclusive claim on one compute unit of a [`CuCluster`], handed out by
/// [`CuCluster::checkout`] and returned on drop. Holding the lease is the
/// only sanctioned way for concurrent jobs to obtain devices: two live leases
/// always name different CUs.
#[derive(Debug)]
pub struct CuLease<'a> {
    cluster: &'a CuCluster,
    cu: usize,
}

impl CuLease<'_> {
    /// The compute unit this lease reserves.
    pub fn cu(&self) -> usize {
        self.cu
    }

    /// Instantiates a fresh device for the leased CU (zeroed clock and
    /// counters, own BRAM, shared arbiter) — see [`CuCluster::device_for_cu`].
    pub fn device(&self) -> Device {
        self.cluster.device_for_cu(self.cu)
    }
}

impl Drop for CuLease<'_> {
    fn drop(&mut self) {
        let mut leased = self.cluster.leased.lock().expect("lease table poisoned");
        leased[self.cu] = false;
        // notify_all, not notify_one: `checkout_among` waiters are selective
        // (a freed CU may be outside the woken waiter's candidate set, which
        // would strand a waiter the CU *does* match).
        self.cluster.returned.notify_all();
    }
}

/// The largest number of compute units of the given per-CU shape that fits the
/// card budget (each CU replicates its verification lanes and on-chip areas).
pub fn max_compute_units(
    lanes_per_cu: usize,
    areas_per_cu: &OnChipAreas,
    costs: &ModuleCosts,
    budget: ResourceBudget,
) -> usize {
    let mut fits = 0usize;
    for cus in 1..=256usize {
        let areas = OnChipAreas {
            buffer_bytes: areas_per_cu.buffer_bytes * cus,
            processing_bytes: areas_per_cu.processing_bytes * cus,
            graph_cache_bytes: areas_per_cu.graph_cache_bytes * cus,
            barrier_cache_bytes: areas_per_cu.barrier_cache_bytes * cus,
            fifo_bytes: areas_per_cu.fifo_bytes * cus,
        };
        let estimate = ResourceEstimate::estimate(lanes_per_cu * cus, &areas, costs, budget);
        if estimate.fits() {
            fits = cus;
        } else {
            break;
        }
    }
    fits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas() -> OnChipAreas {
        OnChipAreas {
            buffer_bytes: 8_192 * 136,
            processing_bytes: 1_024 * 136,
            graph_cache_bytes: 512 * 1024,
            barrier_cache_bytes: 64 * 1024,
            fifo_bytes: 16 * 2 * 136,
        }
    }

    #[test]
    fn one_cu_schedule_is_just_the_serial_sum() {
        let schedule = schedule_batch(&[100, 200, 300], &MultiCuConfig::default());
        assert_eq!(schedule.makespan_cycles, 600);
        assert_eq!(schedule.serial_cycles, 600);
        assert!((schedule.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_work_splits_evenly_without_contention() {
        let config =
            MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.0, charge_banked: false };
        let schedule = schedule_batch(&[100; 8], &config);
        assert_eq!(schedule.per_cu_cycles, vec![200; 4]);
        assert_eq!(schedule.makespan_cycles, 200);
        assert!((schedule.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_handles_skewed_batches_sensibly() {
        // One giant query dominates: the makespan cannot beat it.
        let config =
            MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.0, charge_banked: false };
        let schedule = schedule_batch(&[1_000, 10, 10, 10, 10], &config);
        assert_eq!(schedule.makespan_cycles, 1_000);
        assert!(schedule.speedup() < 1.05);
    }

    #[test]
    fn bandwidth_contention_caps_the_speedup() {
        // With each CU able to absorb half the bandwidth, 4 active CUs double
        // every CU's cycles: the ideal 4x speedup collapses to 2x.
        let config =
            MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.5, charge_banked: false };
        let schedule = schedule_batch(&[100; 8], &config);
        assert_eq!(schedule.contention_factor, 2.0);
        assert_eq!(schedule.makespan_cycles, 400);
        assert!((schedule.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let schedule = schedule_batch(
            &[],
            &MultiCuConfig { compute_units: 8, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        assert_eq!(schedule.makespan_cycles, 0);
        assert_eq!(schedule.serial_cycles, 0);
        assert_eq!(schedule.speedup(), 1.0);
    }

    #[test]
    fn more_cus_never_hurt_without_contention() {
        let work: Vec<u64> = (1..=40).map(|i| i * 17).collect();
        let mut previous = u64::MAX;
        for cus in 1..=8 {
            let config = MultiCuConfig {
                compute_units: cus,
                per_cu_bandwidth_share: 0.0,
                charge_banked: false,
            };
            let schedule = schedule_batch(&work, &config);
            assert!(schedule.makespan_cycles <= previous, "cus = {cus}");
            previous = schedule.makespan_cycles;
        }
    }

    #[test]
    fn u200_fits_a_handful_of_default_cus_but_not_hundreds() {
        let max =
            max_compute_units(16, &areas(), &ModuleCosts::default(), ResourceBudget::alveo_u200());
        assert!(max >= 2, "at least two CUs should fit, got {max}");
        assert!(max < 64, "the model must not claim absurd replication, got {max}");
        // The returned value really is the tipping point.
        let areas_at = |cus: usize| OnChipAreas {
            buffer_bytes: areas().buffer_bytes * cus,
            processing_bytes: areas().processing_bytes * cus,
            graph_cache_bytes: areas().graph_cache_bytes * cus,
            barrier_cache_bytes: areas().barrier_cache_bytes * cus,
            fifo_bytes: areas().fifo_bytes * cus,
        };
        assert!(ResourceEstimate::estimate(
            16 * max,
            &areas_at(max),
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200()
        )
        .fits());
        assert!(!ResourceEstimate::estimate(
            16 * (max + 1),
            &areas_at(max + 1),
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200()
        )
        .fits());
    }

    #[test]
    fn dispatch_prediction_only_inflates_the_dram_share() {
        let work = vec![CuWorkload { cycles: 1_000, dram_cycles: 100, bank_stall_cycles: 0 }; 8];
        let config =
            MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.5, charge_banked: false };
        let predicted = predict_dispatch(&work, &config);
        // Two queries per CU; factor 2 doubles only the 200 DRAM cycles.
        assert_eq!(predicted.per_cu_cycles, vec![2_200; 4]);
        assert_eq!(predicted.makespan_cycles, 2_200);
        assert_eq!(predicted.serial_cycles, 8_000);
        // The closed form would have predicted 4_000 for the same batch.
        let closed = schedule_batch(&[1_000; 8], &config);
        assert_eq!(closed.makespan_cycles, 4_000);
        assert!(predicted.makespan_cycles < closed.makespan_cycles);
    }

    #[test]
    fn dispatch_prediction_matches_closed_form_when_all_cycles_are_dram() {
        let work: Vec<CuWorkload> = (1..=8)
            .map(|i| CuWorkload { cycles: i * 100, dram_cycles: i * 100, bank_stall_cycles: 0 })
            .collect();
        let config =
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.75, charge_banked: false };
        let cycles: Vec<u64> = work.iter().map(|w| w.cycles).collect();
        let traffic = predict_dispatch(&work, &config);
        let closed = schedule_batch(&cycles, &config);
        assert_eq!(traffic.makespan_cycles, closed.makespan_cycles);
        assert_eq!(traffic.contention_factor, closed.contention_factor);
    }

    #[test]
    fn empty_dispatch_prediction_is_a_noop() {
        let predicted = predict_dispatch(&[], &MultiCuConfig::default());
        assert_eq!(predicted.makespan_cycles, 0);
        assert_eq!(predicted.serial_cycles, 0);
        assert_eq!(predicted.speedup(), 1.0);
    }

    #[test]
    fn cluster_devices_share_one_arbiter_but_own_their_clocks() {
        let cluster = CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        assert_eq!(cluster.compute_units(), 2);
        let mut a = cluster.device_for_cu(0);
        let mut b = cluster.device_for_cu(1);
        a.charge_cycles(10);
        assert_eq!(a.cycles(), 10);
        assert_eq!(b.cycles(), 0, "each CU has its own clock");
        // Both devices meter traffic into the same arbiter.
        a.charge_read(crate::MemoryKind::Dram, 64);
        b.charge_write(crate::MemoryKind::Dram, 64);
        assert_eq!(cluster.arbiter().stats().refills, 2);
        assert_eq!(cluster.arbiter().stats().words, 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_rejects_out_of_range_cu() {
        let cluster = CuCluster::new(DeviceConfig::alveo_u200(), MultiCuConfig::default());
        let _ = cluster.device_for_cu(1);
    }

    #[test]
    fn leases_are_exclusive_and_returned_on_drop() {
        let cluster = CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        let a = cluster.checkout();
        let b = cluster.checkout();
        assert_ne!(a.cu(), b.cu(), "two live leases never alias a CU");
        assert_eq!(cluster.leased_cus(), 2);
        assert!(cluster.try_checkout().is_none(), "no third CU to lease");
        let freed = a.cu();
        drop(a);
        assert_eq!(cluster.leased_cus(), 1);
        let c = cluster.try_checkout().expect("returned CU is leasable again");
        assert_eq!(c.cu(), freed);
        // The lease builds devices for its own CU.
        assert_eq!(c.device().cycles(), 0);
    }

    #[test]
    fn blocking_checkout_waits_for_a_returned_lease() {
        let cluster =
            Arc::new(CuCluster::new(DeviceConfig::alveo_u200(), MultiCuConfig::default()));
        let lease = cluster.checkout();
        std::thread::scope(|scope| {
            let cluster = Arc::clone(&cluster);
            let waiter = scope.spawn(move || cluster.checkout().cu());
            // Give the waiter a moment to park, then return the only CU.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(lease);
            assert_eq!(waiter.join().expect("waiter panicked"), 0);
        });
    }

    #[test]
    fn specific_cu_checkout_respects_the_lease_table() {
        let cluster = CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 3, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        let lease = cluster.try_checkout_cu(1).expect("CU 1 is free");
        assert_eq!(lease.cu(), 1);
        assert!(cluster.try_checkout_cu(1).is_none(), "CU 1 is taken");
        assert_eq!(cluster.try_checkout_cu(2).expect("CU 2 is free").cu(), 2);
        drop(lease);
        assert_eq!(cluster.try_checkout_cu(1).expect("returned").cu(), 1);
    }

    #[test]
    fn checkout_among_times_out_instead_of_parking_forever() {
        let cluster = CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        let _held = cluster.try_checkout_cu(0).expect("free");
        // CU 0 is leased and CU 1 is outside the candidate set: must time out.
        let start = std::time::Instant::now();
        assert!(cluster.checkout_among(&[0], Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
        // Empty candidate sets fail fast.
        assert!(cluster.checkout_among(&[], Duration::from_secs(5)).is_none());
        // A free candidate is handed out immediately.
        assert_eq!(cluster.checkout_among(&[1], Duration::ZERO).expect("free").cu(), 1);
    }

    #[test]
    fn checkout_among_wakes_when_a_candidate_returns() {
        let cluster = Arc::new(CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        ));
        let lease = cluster.try_checkout_cu(1).expect("free");
        std::thread::scope(|scope| {
            let cluster = Arc::clone(&cluster);
            let waiter = scope.spawn(move || {
                cluster.checkout_among(&[1], Duration::from_secs(10)).map(|l| l.cu())
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(lease);
            assert_eq!(waiter.join().expect("waiter panicked"), Some(1));
        });
    }

    #[test]
    fn faulty_cluster_devices_draw_from_the_shared_plan() {
        use crate::fault::{FaultKind, FaultPlan, ScriptedFault};
        let plan = FaultPlan::scripted(2);
        plan.push_script(1, ScriptedFault { after_ops: 0, kind: FaultKind::DramCorruption });
        let cluster = CuCluster::with_faults(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
            Arc::clone(&plan),
        );
        let mut healthy = cluster.device_for_cu(0);
        let mut sick = cluster.device_for_cu(1);
        healthy.charge_read(crate::MemoryKind::Dram, 64);
        sick.charge_read(crate::MemoryKind::Dram, 64);
        assert!(healthy.pending_fault().is_none());
        assert_eq!(sick.pending_fault().unwrap().kind, FaultKind::DramCorruption);
        assert_eq!(cluster.fault_plan().unwrap().faults_injected(), 1);
    }

    #[test]
    fn cluster_arbiter_meters_bank_activity() {
        let cluster = CuCluster::new(
            DeviceConfig::alveo_u200(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        assert!(cluster.arbiter().has_banks());
        let mut device = cluster.device_for_cu(0);
        device.charge_read(crate::MemoryKind::Dram, 2048);
        let report = cluster.arbiter().bank_report().expect("banks attached");
        assert_eq!(report.accesses, 1);
        assert!(report.max_bank_words >= 512, "a 2048-word burst spans all four 512-word stripes");
    }

    #[test]
    fn tiny_budget_fits_no_cu() {
        let max = max_compute_units(
            16,
            &areas(),
            &ModuleCosts::default(),
            ResourceBudget::tiny_for_tests(),
        );
        assert_eq!(max, 0);
    }
}
