//! Multiple compute units (CUs) on one card.
//!
//! The paper instantiates a single PEFP kernel. A natural extension — and the
//! obvious way to serve the batched workloads of Section VII-A faster — is to
//! place several independent kernel instances (compute units, in Vitis
//! terminology) on the same card, each with its own BRAM areas, and to
//! distribute the queries of a batch across them. The card's DRAM bandwidth
//! is shared, so the speedup saturates once the aggregated traffic of the CUs
//! exceeds what the memory system can deliver. This module models exactly
//! that trade-off: longest-processing-time scheduling of per-query kernel
//! times onto `n` CUs plus a bandwidth-sharing correction, together with a
//! resource check for how many CUs actually fit the card.

use crate::resources::{ModuleCosts, OnChipAreas, ResourceBudget, ResourceEstimate};
use serde::{Deserialize, Serialize};

/// Configuration of a multi-CU deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiCuConfig {
    /// Number of compute units instantiated.
    pub compute_units: usize,
    /// Fraction of the total DRAM bandwidth one CU can absorb on its own
    /// (e.g. 0.5 means two CUs already saturate the memory system).
    pub per_cu_bandwidth_share: f64,
}

impl Default for MultiCuConfig {
    fn default() -> Self {
        MultiCuConfig { compute_units: 1, per_cu_bandwidth_share: 0.5 }
    }
}

/// Predicted execution of one batch on a multi-CU card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCuSchedule {
    /// Number of compute units used.
    pub compute_units: usize,
    /// Cycles each CU is busy (after bandwidth correction), indexed by CU.
    pub per_cu_cycles: Vec<u64>,
    /// The batch makespan in cycles (the maximum over CUs).
    pub makespan_cycles: u64,
    /// Sum of the uncorrected per-query cycles (the single-CU makespan).
    pub serial_cycles: u64,
    /// The bandwidth-contention factor that was applied (≥ 1.0).
    pub contention_factor: f64,
}

impl MultiCuSchedule {
    /// Speedup of the schedule over running every query on one CU.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.makespan_cycles as f64
        }
    }
}

/// Schedules a batch of per-query kernel cycle counts onto the CUs of
/// `config` using longest-processing-time-first assignment, then inflates the
/// result by the DRAM-contention factor
/// `max(1, active_cus × per_cu_bandwidth_share)`.
pub fn schedule_batch(query_cycles: &[u64], config: &MultiCuConfig) -> MultiCuSchedule {
    let cus = config.compute_units.max(1);
    let serial_cycles: u64 = query_cycles.iter().sum();

    // LPT: sort descending, always give the next query to the least-loaded CU.
    let mut sorted: Vec<u64> = query_cycles.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut per_cu = vec![0u64; cus];
    for cycles in sorted {
        let min_idx =
            per_cu.iter().enumerate().min_by_key(|(_, &load)| load).map(|(i, _)| i).unwrap_or(0);
        per_cu[min_idx] += cycles;
    }

    let active_cus = per_cu.iter().filter(|&&load| load > 0).count().max(1);
    let contention_factor = (active_cus as f64 * config.per_cu_bandwidth_share).max(1.0);
    let per_cu_cycles: Vec<u64> =
        per_cu.iter().map(|&c| (c as f64 * contention_factor).round() as u64).collect();
    let makespan_cycles = per_cu_cycles.iter().copied().max().unwrap_or(0);

    MultiCuSchedule {
        compute_units: cus,
        per_cu_cycles,
        makespan_cycles,
        serial_cycles,
        contention_factor,
    }
}

/// The largest number of compute units of the given per-CU shape that fits the
/// card budget (each CU replicates its verification lanes and on-chip areas).
pub fn max_compute_units(
    lanes_per_cu: usize,
    areas_per_cu: &OnChipAreas,
    costs: &ModuleCosts,
    budget: ResourceBudget,
) -> usize {
    let mut fits = 0usize;
    for cus in 1..=256usize {
        let areas = OnChipAreas {
            buffer_bytes: areas_per_cu.buffer_bytes * cus,
            processing_bytes: areas_per_cu.processing_bytes * cus,
            graph_cache_bytes: areas_per_cu.graph_cache_bytes * cus,
            barrier_cache_bytes: areas_per_cu.barrier_cache_bytes * cus,
            fifo_bytes: areas_per_cu.fifo_bytes * cus,
        };
        let estimate = ResourceEstimate::estimate(lanes_per_cu * cus, &areas, costs, budget);
        if estimate.fits() {
            fits = cus;
        } else {
            break;
        }
    }
    fits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas() -> OnChipAreas {
        OnChipAreas {
            buffer_bytes: 8_192 * 136,
            processing_bytes: 1_024 * 136,
            graph_cache_bytes: 512 * 1024,
            barrier_cache_bytes: 64 * 1024,
            fifo_bytes: 16 * 2 * 136,
        }
    }

    #[test]
    fn one_cu_schedule_is_just_the_serial_sum() {
        let schedule = schedule_batch(&[100, 200, 300], &MultiCuConfig::default());
        assert_eq!(schedule.makespan_cycles, 600);
        assert_eq!(schedule.serial_cycles, 600);
        assert!((schedule.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_work_splits_evenly_without_contention() {
        let config = MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.0 };
        let schedule = schedule_batch(&[100; 8], &config);
        assert_eq!(schedule.per_cu_cycles, vec![200; 4]);
        assert_eq!(schedule.makespan_cycles, 200);
        assert!((schedule.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_handles_skewed_batches_sensibly() {
        // One giant query dominates: the makespan cannot beat it.
        let config = MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.0 };
        let schedule = schedule_batch(&[1_000, 10, 10, 10, 10], &config);
        assert_eq!(schedule.makespan_cycles, 1_000);
        assert!(schedule.speedup() < 1.05);
    }

    #[test]
    fn bandwidth_contention_caps_the_speedup() {
        // With each CU able to absorb half the bandwidth, 4 active CUs double
        // every CU's cycles: the ideal 4x speedup collapses to 2x.
        let config = MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.5 };
        let schedule = schedule_batch(&[100; 8], &config);
        assert_eq!(schedule.contention_factor, 2.0);
        assert_eq!(schedule.makespan_cycles, 400);
        assert!((schedule.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let schedule =
            schedule_batch(&[], &MultiCuConfig { compute_units: 8, per_cu_bandwidth_share: 0.5 });
        assert_eq!(schedule.makespan_cycles, 0);
        assert_eq!(schedule.serial_cycles, 0);
        assert_eq!(schedule.speedup(), 1.0);
    }

    #[test]
    fn more_cus_never_hurt_without_contention() {
        let work: Vec<u64> = (1..=40).map(|i| i * 17).collect();
        let mut previous = u64::MAX;
        for cus in 1..=8 {
            let config = MultiCuConfig { compute_units: cus, per_cu_bandwidth_share: 0.0 };
            let schedule = schedule_batch(&work, &config);
            assert!(schedule.makespan_cycles <= previous, "cus = {cus}");
            previous = schedule.makespan_cycles;
        }
    }

    #[test]
    fn u200_fits_a_handful_of_default_cus_but_not_hundreds() {
        let max =
            max_compute_units(16, &areas(), &ModuleCosts::default(), ResourceBudget::alveo_u200());
        assert!(max >= 2, "at least two CUs should fit, got {max}");
        assert!(max < 64, "the model must not claim absurd replication, got {max}");
        // The returned value really is the tipping point.
        let areas_at = |cus: usize| OnChipAreas {
            buffer_bytes: areas().buffer_bytes * cus,
            processing_bytes: areas().processing_bytes * cus,
            graph_cache_bytes: areas().graph_cache_bytes * cus,
            barrier_cache_bytes: areas().barrier_cache_bytes * cus,
            fifo_bytes: areas().fifo_bytes * cus,
        };
        assert!(ResourceEstimate::estimate(
            16 * max,
            &areas_at(max),
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200()
        )
        .fits());
        assert!(!ResourceEstimate::estimate(
            16 * (max + 1),
            &areas_at(max + 1),
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200()
        )
        .fits());
    }

    #[test]
    fn tiny_budget_fits_no_cu() {
        let max = max_compute_units(
            16,
            &areas(),
            &ModuleCosts::default(),
            ResourceBudget::tiny_for_tests(),
        );
        assert_eq!(max, 0);
    }
}
