//! Deterministic fault injection for the simulated device fleet.
//!
//! Real U200/U250 deployments (the boards of the paper's Section VIII) see
//! transient DRAM bit flips, PCIe transfer errors and wedged kernels; the
//! cost model in this crate is otherwise perfect. This module makes failure
//! an *input*: a seed-driven [`FaultPlan`] attached to a
//! [`crate::multi_cu::CuCluster`] decides, per compute unit and per memory
//! transfer, whether that transfer is corrupted, stalled, or kills the CU
//! outright.
//!
//! Faults are **observable, never silent**. The simulated card checks an
//! end-to-end checksum on every DRAM refill and PCIe DMA (on real hardware:
//! ECC plus a CRC over the descriptor ring); a corrupted transfer therefore
//! surfaces as a [`FaultEvent`] latched on the [`crate::Device`] — the
//! engine aborts the query at the next batch boundary instead of computing
//! with bad data. Stalls are *not* latched: they only burn simulated cycles,
//! and are caught (if excessive) by the cycle-progress watchdog the engine
//! runs (`EngineOptions::cycle_budget` in `pefp-core`), which reports them
//! as [`FaultKind::CuHang`].
//!
//! Determinism: every device instantiation draws from a SplitMix64 stream
//! keyed by `(plan seed, cu, per-CU instantiation counter)`, so a chaos test
//! that replays the same jobs in the same per-CU order sees the same faults —
//! and a *retry on a different CU* sees an independent stream, which is
//! exactly why the host retries elsewhere.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The classes of hardware fault the plan can inject and the detectors can
/// raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A DRAM refill failed its end-to-end checksum (transient bit flip).
    DramCorruption,
    /// A host↔device DMA failed its transfer checksum.
    PcieError,
    /// The CU stopped making cycle progress; raised by the engine's
    /// simulated-cycle watchdog, injected as an oversized stall.
    CuHang,
    /// The CU died hard: every subsequent transfer on it faults until the
    /// plan repairs it (see [`FaultPlan::repair`]).
    CuCrash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DramCorruption => write!(f, "DRAM checksum mismatch"),
            FaultKind::PcieError => write!(f, "PCIe transfer error"),
            FaultKind::CuHang => write!(f, "CU hang (cycle watchdog)"),
            FaultKind::CuCrash => write!(f, "CU crash"),
        }
    }
}

/// A detected fault: which CU, what kind, and at which simulated cycle the
/// detector latched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Compute unit the fault was detected on.
    pub cu: usize,
    /// What the detector saw.
    pub kind: FaultKind,
    /// Simulated kernel cycle at detection time.
    pub at_cycle: u64,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on CU {} at cycle {}", self.kind, self.cu, self.at_cycle)
    }
}

impl std::error::Error for FaultEvent {}

/// Per-transfer injection probabilities of a fault mix.
///
/// Rates are per *fault opportunity*: each DRAM refill draws for corruption,
/// stall and crash; each PCIe DMA draws for transfer error and crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a DRAM refill is corrupted (checksum mismatch).
    pub dram_corruption: f64,
    /// Probability a PCIe DMA fails its checksum.
    pub pcie_error: f64,
    /// Probability a DRAM refill stalls the CU for [`FaultRates::stall_cycles`].
    pub cu_stall: f64,
    /// Length of an injected stall in kernel cycles. Small values are latency
    /// noise; values beyond the engine's cycle budget simulate a hang.
    pub stall_cycles: u64,
    /// Probability any transfer kills the CU permanently.
    pub cu_crash: f64,
}

impl FaultRates {
    /// A plan that injects nothing (useful as a scripted-only base).
    pub const NONE: FaultRates = FaultRates {
        dram_corruption: 0.0,
        pcie_error: 0.0,
        cu_stall: 0.0,
        stall_cycles: 0,
        cu_crash: 0.0,
    };

    /// True when every rate is zero.
    pub fn is_zero(&self) -> bool {
        self.dram_corruption == 0.0
            && self.pcie_error == 0.0
            && self.cu_stall == 0.0
            && self.cu_crash == 0.0
    }
}

/// One scripted fault: fires on the first fault opportunity after `after_ops`
/// transfers of a single device instantiation (i.e. one job attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Number of transfers to let through before firing.
    pub after_ops: u64,
    /// The fault to raise.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven fault schedule for a CU cluster.
///
/// The plan is shared (`Arc`) between the cluster and the host's health
/// tracker: the cluster derives a per-instantiation [`FaultInjector`] for
/// every device it builds; the host reads [`FaultPlan::is_crashed`] and may
/// [`FaultPlan::repair`] a CU (simulating an operator reset / xclbin reload)
/// when probing quarantined CUs back in.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Sticky per-CU crash latches.
    crashed: Vec<AtomicBool>,
    /// Per-CU device instantiation counters (one per job attempt), used to
    /// key the per-attempt SplitMix64 stream.
    instantiations: Vec<AtomicU64>,
    /// Per-CU scripted fault queues; one entry is popped per instantiation.
    scripts: Vec<Mutex<VecDeque<ScriptedFault>>>,
    /// Total faults injected (all CUs, all kinds), for telemetry.
    injected: AtomicU64,
}

impl FaultPlan {
    /// A seed-driven plan over `cus` compute units with the given mix.
    pub fn seeded(seed: u64, rates: FaultRates, cus: usize) -> Arc<Self> {
        let cus = cus.max(1);
        Arc::new(FaultPlan {
            seed,
            rates,
            crashed: (0..cus).map(|_| AtomicBool::new(false)).collect(),
            instantiations: (0..cus).map(|_| AtomicU64::new(0)).collect(),
            scripts: (0..cus).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: AtomicU64::new(0),
        })
    }

    /// A plan that fires only explicitly scripted faults (rates all zero).
    pub fn scripted(cus: usize) -> Arc<Self> {
        Self::seeded(0, FaultRates::NONE, cus)
    }

    /// Queues a scripted fault on `cu`; each device instantiation (job
    /// attempt) on that CU consumes at most one queued entry, in order.
    pub fn push_script(&self, cu: usize, fault: ScriptedFault) {
        self.scripts[cu].lock().expect("fault script poisoned").push_back(fault);
    }

    /// Whether `cu` is currently crash-latched.
    pub fn is_crashed(&self, cu: usize) -> bool {
        self.crashed[cu].load(Ordering::Acquire)
    }

    /// Clears the crash latch on `cu` — the simulated equivalent of an
    /// operator resetting the card. The host's probe path calls this before
    /// re-admitting a quarantined CU so a transient crash can heal; a CU
    /// whose mix keeps crashing will simply trip the breaker again.
    pub fn repair(&self, cu: usize) {
        self.crashed[cu].store(false, Ordering::Release);
    }

    /// Number of compute units this plan covers.
    pub fn compute_units(&self) -> usize {
        self.crashed.len()
    }

    /// Total faults injected so far across all CUs.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Derives the injector for the next device instantiation on `cu`.
    pub fn injector_for(self: &Arc<Self>, cu: usize) -> FaultInjector {
        assert!(cu < self.compute_units(), "compute unit {cu} out of range for fault plan");
        let nth = self.instantiations[cu].fetch_add(1, Ordering::Relaxed);
        let script = self.scripts[cu].lock().expect("fault script poisoned").pop_front();
        // Key the stream by (seed, cu, instantiation) through two SplitMix64
        // scrambles so neighbouring CUs/attempts decorrelate.
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((cu as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(nth.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        splitmix64(&mut state);
        splitmix64(&mut state);
        FaultInjector { plan: Arc::clone(self), cu, state, ops: 0, script }
    }
}

/// The outcome of one fault-opportunity draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Stall the CU for this many extra kernel cycles (transient, undetected).
    Stall(u64),
    /// Raise a detected fault of this kind.
    Fault(FaultKind),
}

/// The class of transfer a fault opportunity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferClass {
    /// A DRAM refill (burst read/write, cache miss, spill, fetch).
    Dram,
    /// A host↔device PCIe DMA.
    Pcie,
}

/// Per-device-instantiation fault stream, held by [`crate::Device`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    cu: usize,
    state: u64,
    ops: u64,
    script: Option<ScriptedFault>,
}

impl FaultInjector {
    /// The compute unit this injector belongs to.
    pub fn cu(&self) -> usize {
        self.cu
    }

    /// Draws the fault decision for one transfer of class `class`.
    pub fn draw(&mut self, class: TransferClass) -> Option<Injection> {
        if self.plan.is_crashed(self.cu) {
            // A dead CU fails every transfer; don't double-count telemetry.
            return Some(Injection::Fault(FaultKind::CuCrash));
        }
        self.ops += 1;
        if let Some(script) = self.script {
            if self.ops > script.after_ops {
                self.script = None;
                return Some(self.fire(script.kind));
            }
        }
        let rates = self.plan.rates;
        if rates.is_zero() {
            return None;
        }
        let roll = unit_f64(splitmix64(&mut self.state));
        match class {
            TransferClass::Dram => {
                if roll < rates.dram_corruption {
                    Some(self.fire(FaultKind::DramCorruption))
                } else if roll < rates.dram_corruption + rates.cu_stall {
                    self.plan.injected.fetch_add(1, Ordering::Relaxed);
                    Some(Injection::Stall(rates.stall_cycles))
                } else if roll < rates.dram_corruption + rates.cu_stall + rates.cu_crash {
                    Some(self.fire(FaultKind::CuCrash))
                } else {
                    None
                }
            }
            TransferClass::Pcie => {
                if roll < rates.pcie_error {
                    Some(self.fire(FaultKind::PcieError))
                } else if roll < rates.pcie_error + rates.cu_crash {
                    Some(self.fire(FaultKind::CuCrash))
                } else {
                    None
                }
            }
        }
    }

    fn fire(&mut self, kind: FaultKind) -> Injection {
        self.plan.injected.fetch_add(1, Ordering::Relaxed);
        if kind == FaultKind::CuCrash {
            self.plan.crashed[self.cu].store(true, Ordering::Release);
        }
        Injection::Fault(kind)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_cu_same_attempt_draws_identically() {
        let rates = FaultRates {
            dram_corruption: 0.1,
            pcie_error: 0.1,
            cu_stall: 0.1,
            stall_cycles: 100,
            cu_crash: 0.0,
        };
        let a = FaultPlan::seeded(42, rates, 2);
        let b = FaultPlan::seeded(42, rates, 2);
        let mut ia = a.injector_for(0);
        let mut ib = b.injector_for(0);
        for _ in 0..1000 {
            assert_eq!(ia.draw(TransferClass::Dram), ib.draw(TransferClass::Dram));
        }
    }

    #[test]
    fn different_cus_see_different_streams() {
        let rates = FaultRates {
            dram_corruption: 0.2,
            pcie_error: 0.0,
            cu_stall: 0.0,
            stall_cycles: 0,
            cu_crash: 0.0,
        };
        let plan = FaultPlan::seeded(7, rates, 2);
        let mut i0 = plan.injector_for(0);
        let mut i1 = plan.injector_for(1);
        let d0: Vec<_> = (0..200).map(|_| i0.draw(TransferClass::Dram)).collect();
        let d1: Vec<_> = (0..200).map(|_| i1.draw(TransferClass::Dram)).collect();
        assert_ne!(d0, d1, "per-CU streams must decorrelate");
    }

    #[test]
    fn rates_produce_roughly_proportional_fault_counts() {
        let rates = FaultRates {
            dram_corruption: 0.05,
            pcie_error: 0.0,
            cu_stall: 0.0,
            stall_cycles: 0,
            cu_crash: 0.0,
        };
        let plan = FaultPlan::seeded(11, rates, 1);
        let mut inj = plan.injector_for(0);
        let faults = (0..10_000).filter(|_| inj.draw(TransferClass::Dram).is_some()).count();
        assert!((300..=700).contains(&faults), "~5% of 10k draws expected, got {faults}");
    }

    #[test]
    fn crash_is_sticky_until_repaired() {
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::CuCrash });
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.draw(TransferClass::Dram), Some(Injection::Fault(FaultKind::CuCrash)));
        assert!(plan.is_crashed(0));
        // A fresh instantiation on the crashed CU faults on every transfer.
        let mut next = plan.injector_for(0);
        assert_eq!(next.draw(TransferClass::Pcie), Some(Injection::Fault(FaultKind::CuCrash)));
        plan.repair(0);
        let mut healed = plan.injector_for(0);
        assert_eq!(healed.draw(TransferClass::Dram), None);
    }

    #[test]
    fn scripted_faults_fire_once_after_the_requested_op() {
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 2, kind: FaultKind::DramCorruption });
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.draw(TransferClass::Dram), None);
        assert_eq!(inj.draw(TransferClass::Dram), None);
        assert_eq!(
            inj.draw(TransferClass::Dram),
            Some(Injection::Fault(FaultKind::DramCorruption))
        );
        assert_eq!(inj.draw(TransferClass::Dram), None, "scripted faults are one-shot");
        // The next instantiation has no script left.
        let mut next = plan.injector_for(0);
        for _ in 0..10 {
            assert_eq!(next.draw(TransferClass::Dram), None);
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::seeded(99, FaultRates::NONE, 4);
        let mut inj = plan.injector_for(3);
        for _ in 0..1000 {
            assert_eq!(inj.draw(TransferClass::Dram), None);
            assert_eq!(inj.draw(TransferClass::Pcie), None);
        }
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    fn display_carries_cu_and_cycle_context() {
        let e = FaultEvent { cu: 3, kind: FaultKind::DramCorruption, at_cycle: 1234 };
        let text = e.to_string();
        assert!(text.contains("CU 3"), "{text}");
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("DRAM"), "{text}");
    }
}
