//! FIFO stream channels for the dataflow model.
//!
//! The paper's "data separation" optimisation (Section VI-D) turns the path
//! verification module into an HLS *dataflow* region: the target, barrier and
//! visited checkers each receive their own copy of the input through a stream
//! and a merge stage ANDs their verdicts. In Vitis HLS such stages communicate
//! through `hls::stream` FIFOs; a stage stalls when the FIFO it reads from is
//! empty or the FIFO it writes to is full. This module models those channels
//! so the engine's dataflow accounting can expose the effect of FIFO depth
//! (too shallow → back-pressure stalls, deeper → more BRAM).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded FIFO channel carrying items of a fixed word width, with
/// stall/occupancy accounting.
#[derive(Debug, Clone)]
pub struct FifoChannel<T> {
    name: String,
    depth: usize,
    word_width: usize,
    queue: VecDeque<T>,
    stats: FifoStats,
}

/// Occupancy and stall statistics of one FIFO channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Number of successful pushes.
    pub pushes: u64,
    /// Number of successful pops.
    pub pops: u64,
    /// Number of push attempts rejected because the FIFO was full
    /// (write-side back-pressure stalls).
    pub full_stalls: u64,
    /// Number of pop attempts rejected because the FIFO was empty
    /// (read-side starvation stalls).
    pub empty_stalls: u64,
    /// Highest occupancy observed.
    pub high_water_mark: usize,
}

impl FifoStats {
    /// Total stall events on either side of the channel.
    pub fn total_stalls(&self) -> u64 {
        self.full_stalls + self.empty_stalls
    }
}

impl<T> FifoChannel<T> {
    /// Creates a channel named `name` with capacity `depth` items, each
    /// `word_width` 32-bit words wide (used for BRAM sizing).
    pub fn new(name: impl Into<String>, depth: usize, word_width: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        assert!(word_width > 0, "FIFO word width must be positive");
        FifoChannel {
            name: name.into(),
            depth,
            word_width,
            queue: VecDeque::with_capacity(depth),
            stats: FifoStats::default(),
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured capacity in items.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the channel is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.depth
    }

    /// Attempts to push an item. Returns `false` (and records a full-stall)
    /// when the channel is full.
    pub fn try_push(&mut self, item: T) -> bool {
        if self.is_full() {
            self.stats.full_stalls += 1;
            return false;
        }
        self.queue.push_back(item);
        self.stats.pushes += 1;
        self.stats.high_water_mark = self.stats.high_water_mark.max(self.queue.len());
        true
    }

    /// Attempts to pop an item. Returns `None` (and records an empty-stall)
    /// when the channel is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        match self.queue.pop_front() {
            Some(item) => {
                self.stats.pops += 1;
                Some(item)
            }
            None => {
                self.stats.empty_stalls += 1;
                None
            }
        }
    }

    /// The channel's BRAM footprint in bytes (depth × width × 4 bytes/word).
    pub fn bram_bytes(&self) -> usize {
        self.depth * self.word_width * 4
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// Clears the buffered items and resets statistics.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.stats = FifoStats::default();
    }
}

/// Estimated extra cycles a dataflow region loses to FIFO back-pressure.
///
/// Each stall event costs one initiation-interval bubble; this helper converts
/// the per-channel stall counts collected by the engine into a cycle penalty
/// that [`crate::Device::charge_cycles`] can be charged with.
pub fn stall_penalty_cycles(stats: &[FifoStats], initiation_interval: u64) -> u64 {
    stats.iter().map(|s| s.total_stalls()).sum::<u64>() * initiation_interval.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo_ordered() {
        let mut ch: FifoChannel<u32> = FifoChannel::new("pi", 4, 1);
        assert!(ch.try_push(1));
        assert!(ch.try_push(2));
        assert!(ch.try_push(3));
        assert_eq!(ch.try_pop(), Some(1));
        assert_eq!(ch.try_pop(), Some(2));
        assert_eq!(ch.try_pop(), Some(3));
        assert_eq!(ch.try_pop(), None);
        assert_eq!(ch.stats().pushes, 3);
        assert_eq!(ch.stats().pops, 3);
        assert_eq!(ch.stats().empty_stalls, 1);
    }

    #[test]
    fn full_channel_rejects_and_counts_stalls() {
        let mut ch: FifoChannel<u64> = FifoChannel::new("si", 2, 2);
        assert!(ch.try_push(10));
        assert!(ch.try_push(11));
        assert!(ch.is_full());
        assert!(!ch.try_push(12));
        assert!(!ch.try_push(13));
        assert_eq!(ch.stats().full_stalls, 2);
        assert_eq!(ch.len(), 2);
        // Draining frees space again.
        assert_eq!(ch.try_pop(), Some(10));
        assert!(ch.try_push(12));
    }

    #[test]
    fn high_water_mark_tracks_peak_occupancy() {
        let mut ch: FifoChannel<u8> = FifoChannel::new("bi", 8, 1);
        for i in 0..5 {
            ch.try_push(i);
        }
        ch.try_pop();
        ch.try_pop();
        for i in 0..3 {
            ch.try_push(i);
        }
        assert_eq!(ch.stats().high_water_mark, 6);
    }

    #[test]
    fn bram_footprint_scales_with_depth_and_width() {
        let ch: FifoChannel<u32> = FifoChannel::new("paths", 64, 8);
        assert_eq!(ch.bram_bytes(), 64 * 8 * 4);
    }

    #[test]
    fn reset_clears_items_and_statistics() {
        let mut ch: FifoChannel<u32> = FifoChannel::new("x", 4, 1);
        ch.try_push(1);
        ch.try_pop();
        ch.try_pop();
        ch.reset();
        assert!(ch.is_empty());
        assert_eq!(ch.stats(), FifoStats::default());
    }

    #[test]
    fn stall_penalty_sums_both_stall_kinds() {
        let a = FifoStats { full_stalls: 3, empty_stalls: 2, ..Default::default() };
        let b = FifoStats { full_stalls: 0, empty_stalls: 5, ..Default::default() };
        assert_eq!(stall_penalty_cycles(&[a, b], 1), 10);
        assert_eq!(stall_penalty_cycles(&[a, b], 2), 20);
        assert_eq!(stall_penalty_cycles(&[], 4), 0);
        // An II of zero is clamped to one so stalls are never free.
        assert_eq!(stall_penalty_cycles(&[a], 0), 5);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_is_rejected() {
        let _ch: FifoChannel<u32> = FifoChannel::new("bad", 0, 1);
    }
}
