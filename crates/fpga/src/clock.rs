//! Simulated kernel clock.

use serde::{Deserialize, Serialize};

/// A monotonically increasing cycle counter for the simulated device.
///
/// Every memory access, pipeline execution and PCIe transfer advances the
/// clock; at the end of a query the accumulated cycle count is converted to
/// simulated wall-clock time through the configured frequency.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleClock {
    cycles: u64,
}

impl CycleClock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `cycles`.
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    /// Current cycle count.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the clock to zero (used between queries).
    pub fn reset(&mut self) {
        self.cycles = 0;
    }

    /// Cycles elapsed since an earlier reading.
    pub fn since(&self, earlier: u64) -> u64 {
        self.cycles.saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reports() {
        let mut c = CycleClock::new();
        assert_eq!(c.cycles(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.cycles(), 15);
        assert_eq!(c.since(10), 5);
    }

    #[test]
    fn reset_goes_back_to_zero() {
        let mut c = CycleClock::new();
        c.advance(100);
        c.reset();
        assert_eq!(c.cycles(), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = CycleClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.cycles(), u64::MAX);
        assert_eq!(c.since(u64::MAX), 0);
    }
}
