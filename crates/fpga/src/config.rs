//! Device configuration profiles.

use serde::{Deserialize, Serialize};

/// Which physical memory a transfer touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// On-chip block RAM.
    Bram,
    /// Off-chip DRAM on the FPGA card.
    Dram,
}

/// Static description of the modelled FPGA card.
///
/// The default profile mirrors the paper's experimental platform (Section
/// VII-A): Xilinx Alveo U200, 300 MHz kernel clock, 4×16 GB DRAM, PCIe at
/// 77 GB/s aggregate as drawn in Fig. 2. BRAM capacity is the U200's ~35 MB of
/// on-chip storage (BRAM + URAM) with a safety margin for the kernel logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Kernel clock frequency in MHz.
    pub clock_mhz: f64,
    /// Usable on-chip memory in bytes.
    pub bram_bytes: usize,
    /// Off-chip DRAM capacity in bytes.
    pub dram_bytes: usize,
    /// Read latency of BRAM in cycles (1 on real hardware).
    pub bram_read_latency: u64,
    /// Write latency of BRAM in cycles.
    pub bram_write_latency: u64,
    /// Read latency of a random DRAM access in cycles (7–8 on the U200 per the paper).
    pub dram_read_latency: u64,
    /// Write latency of a random DRAM access in cycles.
    pub dram_write_latency: u64,
    /// Number of additional 32-bit words streamed per cycle once a DRAM burst
    /// is open (sequential accesses amortise the initial latency).
    pub dram_burst_words_per_cycle: u64,
    /// PCIe bandwidth in GB/s for host→device and device→host transfers.
    pub pcie_gbps: f64,
    /// Fixed PCIe/DMA setup latency per transfer, in microseconds.
    pub pcie_setup_us: f64,
    /// Number of parallel expansion/verification lanes instantiated on the
    /// device (the `n` replicated validity-check modules of Fig. 6/7).
    pub verification_lanes: usize,
    /// Pipeline depth (in stages) of the basic, serial verification module:
    /// target check + barrier check + visited check executed back-to-back.
    pub basic_verify_depth: u64,
    /// Pipeline depth of one *separated* verification stage once dataflow
    /// optimisation lets the three checks run concurrently.
    pub dataflow_verify_depth: u64,
    /// Pipeline depth of the merge-result stage that ANDs the three verdicts.
    pub merge_depth: u64,
}

impl DeviceConfig {
    /// Profile of the paper's Xilinx Alveo U200 card.
    pub fn alveo_u200() -> Self {
        DeviceConfig {
            clock_mhz: 300.0,
            bram_bytes: 32 * 1024 * 1024,
            dram_bytes: 64 * 1024 * 1024 * 1024,
            bram_read_latency: 1,
            bram_write_latency: 1,
            dram_read_latency: 8,
            dram_write_latency: 8,
            dram_burst_words_per_cycle: 2,
            pcie_gbps: 77.0,
            pcie_setup_us: 10.0,
            verification_lanes: 16,
            basic_verify_depth: 3,
            dataflow_verify_depth: 1,
            merge_depth: 1,
        }
    }

    /// A deliberately tiny device used by unit tests to force DRAM spills and
    /// cache misses on small graphs (BRAM in the low kilobytes).
    pub fn tiny_for_tests() -> Self {
        DeviceConfig {
            bram_bytes: 16 * 1024,
            dram_bytes: 8 * 1024 * 1024,
            verification_lanes: 4,
            ..Self::alveo_u200()
        }
    }

    /// Cycle duration in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz * 1.0e6)
    }

    /// Converts a cycle count into simulated seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_seconds()
    }

    /// Converts a cycle count into simulated milliseconds.
    pub fn cycles_to_millis(&self, cycles: u64) -> f64 {
        self.cycles_to_seconds(cycles) * 1.0e3
    }

    /// Validates internal consistency (positive latencies, non-zero clock).
    ///
    /// Returns a list of human-readable problems; empty means the profile is
    /// usable.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.clock_mhz <= 0.0 {
            problems.push("clock frequency must be positive".to_string());
        }
        if self.bram_bytes == 0 {
            problems.push("BRAM capacity must be non-zero".to_string());
        }
        if self.dram_bytes < self.bram_bytes {
            problems.push("DRAM should not be smaller than BRAM".to_string());
        }
        if self.bram_read_latency == 0 || self.dram_read_latency == 0 {
            problems.push("memory latencies must be at least one cycle".to_string());
        }
        if self.dram_read_latency < self.bram_read_latency {
            problems.push("DRAM latency below BRAM latency is not a realistic profile".to_string());
        }
        if self.verification_lanes == 0 {
            problems.push("at least one verification lane is required".to_string());
        }
        problems
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::alveo_u200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u200_profile_matches_the_paper() {
        let c = DeviceConfig::alveo_u200();
        assert_eq!(c.clock_mhz, 300.0);
        assert!(c.dram_read_latency >= 7 && c.dram_read_latency <= 8);
        assert_eq!(c.bram_read_latency, 1);
        assert!(c.validate().is_empty());
    }

    #[test]
    fn cycle_conversion_is_consistent() {
        let c = DeviceConfig::alveo_u200();
        // 300 MHz -> 300e6 cycles per second.
        assert!((c.cycles_to_seconds(300_000_000) - 1.0).abs() < 1e-9);
        assert!((c.cycles_to_millis(300_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_profile_still_validates() {
        assert!(DeviceConfig::tiny_for_tests().validate().is_empty());
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut c = DeviceConfig::alveo_u200();
        c.clock_mhz = 0.0;
        c.bram_bytes = 0;
        c.verification_lanes = 0;
        c.dram_read_latency = 0;
        let problems = c.validate();
        assert!(problems.len() >= 3, "{problems:?}");
    }

    #[test]
    fn default_is_u200() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::alveo_u200());
    }
}
