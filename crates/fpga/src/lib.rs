//! # pefp-fpga
//!
//! A cycle-approximate model of the FPGA card used by the paper
//! ("PEFP: Efficient k-hop Constrained s-t Simple Path Enumeration on FPGA",
//! ICDE 2021): a Xilinx Alveo U200 running at 300 MHz with on-chip BRAM and
//! four 16 GB off-chip DRAM banks, connected to the host over PCIe.
//!
//! ## Why a model instead of real hardware
//!
//! The reproduction has no FPGA or HLS toolchain available, so the device is
//! replaced by a deterministic *cost model* (see `DESIGN.md`, Section 2). The
//! model is intentionally simple but captures exactly the resources the
//! paper's optimisations trade against:
//!
//! * **BRAM** ([`Bram`]) — small capacity, 1-cycle access. The engine must fit
//!   its buffer area, processing area, graph cache and barrier cache here.
//! * **DRAM** ([`Dram`]) — large capacity, 7–8 cycle access latency plus a
//!   burst model for sequential transfers. Spilling intermediate paths here is
//!   what the buffer-and-batch + Batch-DFS techniques try to avoid.
//! * **PCIe** ([`Pcie`]) — host↔device transfer time for the preprocessed
//!   subgraph, barrier array and query parameters.
//! * **Pipelines** ([`pipeline`]) — a pipelined loop of `n` iterations with
//!   depth `d` and initiation interval `ii` costs `d + (n-1)*ii` cycles; a
//!   dataflow region costs the maximum of its stages rather than their sum.
//!   This is the standard HLS cost model and is what makes the paper's
//!   "data separation" optimisation visible in the simulated cycle counts.
//!
//! The algorithmic code in `pefp-core` performs all *real* computation in
//! ordinary Rust data structures and merely charges the device for the
//! accesses it would have performed; the resulting cycle count is converted to
//! simulated wall-clock time through the configured clock frequency.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod banks;
pub mod bram;
pub mod clock;
pub mod config;
pub mod counters;
pub mod device;
pub mod dram;
pub mod fault;
pub mod fifo;
pub mod hls;
pub mod multi_cu;
pub mod pcie;
pub mod pipeline;
pub mod power;
pub mod resources;

pub use arbiter::{ArbiterHandle, ArbiterStats, CuActivation, DramArbiter};
pub use banks::{BankReport, DramBanks, Interleaving};
pub use bram::{Bram, BramAllocation};
pub use clock::CycleClock;
pub use config::{DeviceConfig, MemoryKind};
pub use counters::MemoryCounters;
pub use device::{Device, DeviceReport};
pub use dram::Dram;
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRates, ScriptedFault};
pub use fifo::{FifoChannel, FifoStats};
pub use hls::{KernelReport, ModuleLatency};
pub use multi_cu::{
    max_compute_units, predict_dispatch, schedule_batch, CuCluster, CuLease, CuWorkload,
    MultiCuConfig, MultiCuSchedule,
};
pub use pcie::Pcie;
pub use pipeline::{dataflow_cycles, pipeline_cycles, PipelineSpec};
pub use power::{EnergyReport, PowerModel};
pub use resources::{ModuleCosts, OnChipAreas, ResourceBudget, ResourceEstimate};
