//! On-chip BRAM model: capacity-checked region allocation plus access-cost
//! accounting.
//!
//! The engine in `pefp-core` carves BRAM into named regions exactly as the
//! paper does: the *buffer area* `P`, the *processing area* `P'`, and the
//! caches for the CSR vertex array, CSR edge array and barrier array
//! (Section VI-B). Allocation is capacity-checked so an attempt to cache a
//! graph that does not fit is visible to the engine, which must then fall
//! back to DRAM accesses — mirroring the real design decision.

use serde::{Deserialize, Serialize};

/// A named, fixed-size region of BRAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BramAllocation {
    /// Region name (for reports), e.g. `"buffer_area"`.
    pub name: String,
    /// Size in bytes.
    pub bytes: usize,
}

/// On-chip memory with a hard capacity limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bram {
    capacity: usize,
    allocations: Vec<BramAllocation>,
    read_latency: u64,
    write_latency: u64,
}

impl Bram {
    /// Creates a BRAM of `capacity` bytes with the given per-access latencies.
    pub fn new(capacity: usize, read_latency: u64, write_latency: u64) -> Self {
        Bram { capacity, allocations: Vec::new(), read_latency, write_latency }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.allocations.iter().map(|a| a.bytes).sum()
    }

    /// Bytes still available.
    pub fn free(&self) -> usize {
        self.capacity - self.used()
    }

    /// Attempts to reserve `bytes` under `name`.
    ///
    /// Returns `false` (and allocates nothing) when the region does not fit —
    /// the caller is expected to degrade gracefully (e.g. keep the data in
    /// DRAM), just like the real design would have to.
    pub fn try_allocate(&mut self, name: &str, bytes: usize) -> bool {
        if bytes > self.free() {
            return false;
        }
        self.allocations.push(BramAllocation { name: name.to_string(), bytes });
        true
    }

    /// Releases the region named `name` (no-op if absent). Returns the number
    /// of bytes freed.
    pub fn release(&mut self, name: &str) -> usize {
        let mut freed = 0;
        self.allocations.retain(|a| {
            if a.name == name {
                freed += a.bytes;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Releases every region.
    pub fn release_all(&mut self) {
        self.allocations.clear();
    }

    /// Current allocations, in allocation order.
    pub fn allocations(&self) -> &[BramAllocation] {
        &self.allocations
    }

    /// Cycle cost of reading `words` 32-bit words.
    ///
    /// BRAM ports are dual-ported and fully pipelined, so after the first
    /// access the remaining words stream at one per cycle.
    pub fn read_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.read_latency + (words - 1)
        }
    }

    /// Cycle cost of writing `words` 32-bit words.
    pub fn write_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.write_latency + (words - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_respects_capacity() {
        let mut b = Bram::new(1000, 1, 1);
        assert!(b.try_allocate("buffer", 600));
        assert!(!b.try_allocate("cache", 600));
        assert!(b.try_allocate("cache", 400));
        assert_eq!(b.free(), 0);
        assert_eq!(b.allocations().len(), 2);
    }

    #[test]
    fn release_frees_bytes() {
        let mut b = Bram::new(1000, 1, 1);
        b.try_allocate("buffer", 600);
        assert_eq!(b.release("buffer"), 600);
        assert_eq!(b.used(), 0);
        assert_eq!(b.release("missing"), 0);
    }

    #[test]
    fn release_all_clears_everything() {
        let mut b = Bram::new(100, 1, 1);
        b.try_allocate("a", 10);
        b.try_allocate("b", 20);
        b.release_all();
        assert_eq!(b.used(), 0);
        assert_eq!(b.free(), 100);
    }

    #[test]
    fn costs_follow_the_pipelined_model() {
        let b = Bram::new(100, 1, 1);
        assert_eq!(b.read_cost(0), 0);
        assert_eq!(b.read_cost(1), 1);
        assert_eq!(b.read_cost(10), 10);
        assert_eq!(b.write_cost(4), 4);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut b = Bram::new(0, 1, 1);
        assert!(!b.try_allocate("x", 1));
        assert!(b.try_allocate("empty", 0));
    }
}
