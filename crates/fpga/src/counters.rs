//! Memory-traffic counters.
//!
//! The paper's caching and Batch-DFS techniques are justified entirely by the
//! number of DRAM accesses they avoid; these counters make that visible in
//! the reproduction's reports (`DeviceReport` in [`crate::device`]).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counts of memory operations performed by the engine, in 32-bit words.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryCounters {
    /// Number of BRAM read operations.
    pub bram_reads: u64,
    /// Number of BRAM write operations.
    pub bram_writes: u64,
    /// Number of DRAM read operations (random or burst-start).
    pub dram_reads: u64,
    /// Number of DRAM write operations (random or burst-start).
    pub dram_writes: u64,
    /// Total 32-bit words read from DRAM (including burst payloads).
    pub dram_words_read: u64,
    /// Total 32-bit words written to DRAM (including burst payloads).
    pub dram_words_written: u64,
    /// Number of times the buffer area overflowed and was flushed to DRAM.
    pub buffer_flushes: u64,
    /// Number of batches fetched back from DRAM into BRAM.
    pub dram_batch_fetches: u64,
    /// Graph/barrier cache hits served from BRAM.
    pub cache_hits: u64,
    /// Graph/barrier cache misses that had to go to DRAM.
    pub cache_misses: u64,
}

impl MemoryCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total DRAM words moved in either direction.
    pub fn dram_words_total(&self) -> u64 {
        self.dram_words_read + self.dram_words_written
    }

    /// Cache hit rate in `[0, 1]`; `1.0` when no lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl AddAssign for MemoryCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.bram_reads += rhs.bram_reads;
        self.bram_writes += rhs.bram_writes;
        self.dram_reads += rhs.dram_reads;
        self.dram_writes += rhs.dram_writes;
        self.dram_words_read += rhs.dram_words_read;
        self.dram_words_written += rhs.dram_words_written;
        self.buffer_flushes += rhs.buffer_flushes;
        self.dram_batch_fetches += rhs.dram_batch_fetches;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_hit_rate() {
        let c = MemoryCounters {
            dram_words_read: 100,
            dram_words_written: 50,
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(c.dram_words_total(), 150);
        assert!((c.cache_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_one() {
        assert_eq!(MemoryCounters::new().cache_hit_rate(), 1.0);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = MemoryCounters {
            bram_reads: 1,
            dram_reads: 2,
            buffer_flushes: 3,
            ..Default::default()
        };
        let b = MemoryCounters {
            bram_reads: 10,
            dram_reads: 20,
            buffer_flushes: 30,
            cache_hits: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.bram_reads, 11);
        assert_eq!(a.dram_reads, 22);
        assert_eq!(a.buffer_flushes, 33);
        assert_eq!(a.cache_hits, 5);
    }
}
