//! Multi-bank DRAM model.
//!
//! The Alveo U200 the paper runs on carries four 16 GB DDR4 banks. The single
//! [`crate::Dram`] latency model is enough for the headline experiments, but
//! the buffer-and-batch design decisions (how big a flush, how big a fetch)
//! also interact with *where* the data lands: spreading sequential bursts
//! round-robin across banks multiplies effective bandwidth, while repeatedly
//! hitting the same bank serialises them. This module models that effect so
//! the ablation benches can show the sensitivity of PEFP to DRAM layout.

use serde::{Deserialize, Serialize};

/// Address-to-bank interleaving policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleaving {
    /// Consecutive stripes of `stripe_words` go to consecutive banks
    /// (round-robin). This is how the paper's separate read/write buffers are
    /// mapped by the shell.
    RoundRobin,
    /// Everything goes to bank 0 — the pathological layout used as the
    /// "no banking" ablation.
    SingleBank,
}

/// Direction of a DRAM burst. The paper's device keeps *separate* read and
/// write buffers (§VI) precisely because flipping the shared bus between
/// directions costs a turnaround delay; the bank model charges that flip when
/// consecutive bursts disagree on direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstDirection {
    /// DRAM → chip.
    Read,
    /// Chip → DRAM.
    Write,
}

/// Cost breakdown of one burst, split into the components the arbiter either
/// always folds into the base transfer cost (`service`) or only charges to CU
/// clocks when banked charging is enabled (`conflict`, `turnaround`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstCharge {
    /// Latency + per-bank service share — the cost the flat [`crate::Dram`]
    /// model already approximates.
    pub service: u64,
    /// Extra latency because the burst's start bank held a different open
    /// row (row-buffer miss: precharge + activate).
    pub conflict: u64,
    /// Extra latency because the burst flipped the bus direction.
    pub turnaround: u64,
}

impl BurstCharge {
    /// The banked stall beyond the flat service cost.
    pub fn stall(&self) -> u64 {
        self.conflict + self.turnaround
    }
}

/// A set of DRAM banks with per-bank occupancy and conflict accounting.
#[derive(Debug, Clone)]
pub struct DramBanks {
    num_banks: usize,
    stripe_words: u64,
    read_latency: u64,
    burst_words_per_cycle: u64,
    interleaving: Interleaving,
    /// Cycles a burst pays when it flips the bus direction relative to the
    /// previous burst (read↔write turnaround). An *uncalibrated extension* of
    /// the paper's model — see `docs/paper_fidelity.md`.
    turnaround_penalty: u64,
    /// Words stored per bank (capacity accounting only; contents live in the
    /// engine's ordinary Rust structures).
    words_per_bank: Vec<u64>,
    conflicts: u64,
    accesses: u64,
    turnarounds: u64,
    /// Per-bank open row (= stripe index): each bank has its own row buffer,
    /// and a burst that starts on a bank whose open row differs from the
    /// burst's stripe pays a conflict (precharge + activate) — unless the
    /// bank has been idle long enough for interleaving to hide it (see
    /// `last_tick`). A burst whose stripe is already open in its start bank
    /// is a row-buffer hit.
    open_rows: Vec<Option<u64>>,
    /// Global stripe-chunk counter: every stripe-sized chunk of every burst
    /// advances it by one.
    tick: u64,
    /// Tick of the last chunk served by each bank. A row miss on a bank that
    /// has been idle for ≥ `num_banks` chunks is hidden (the controller
    /// overlaps the precharge + activate with the other banks' transfers —
    /// the very point of bank interleaving), so sequential streams that wrap
    /// the banks stay conflict-free; only rapid re-use of one bank with a
    /// different row stalls.
    last_tick: Vec<u64>,
    /// Direction of the previous burst (turnaround detection state).
    last_dir: Option<BurstDirection>,
    /// Reused per-burst distribution buffer (no allocation per access).
    per_bank_scratch: Vec<u64>,
}

/// Summary of bank activity for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankReport {
    /// Number of burst accesses issued.
    pub accesses: u64,
    /// Number of accesses whose start bank held a different open row.
    pub conflicts: u64,
    /// Number of accesses that flipped the bus direction (read↔write).
    pub turnarounds: u64,
    /// Words resident per bank at the time of the report.
    pub max_bank_words: u64,
    /// Words resident in the least loaded bank.
    pub min_bank_words: u64,
}

impl DramBanks {
    /// Creates `num_banks` banks with the given stripe width (in 32-bit
    /// words), per-access latency and burst bandwidth.
    pub fn new(
        num_banks: usize,
        stripe_words: u64,
        read_latency: u64,
        burst_words_per_cycle: u64,
        interleaving: Interleaving,
    ) -> Self {
        assert!(num_banks > 0, "at least one DRAM bank is required");
        assert!(stripe_words > 0, "stripe width must be positive");
        DramBanks {
            num_banks,
            stripe_words,
            read_latency,
            burst_words_per_cycle: burst_words_per_cycle.max(1),
            interleaving,
            // Default turnaround: half an access latency — roughly the
            // tWTR/tRTW share of a DDR4 row cycle. Uncalibrated; override
            // with [`DramBanks::with_turnaround_penalty`].
            turnaround_penalty: read_latency / 2,
            words_per_bank: vec![0; num_banks],
            conflicts: 0,
            accesses: 0,
            turnarounds: 0,
            open_rows: vec![None; num_banks],
            tick: 0,
            last_tick: vec![0; num_banks],
            last_dir: None,
            per_bank_scratch: vec![0; num_banks],
        }
    }

    /// Overrides the read↔write turnaround penalty (cycles per direction
    /// flip; 0 disables the asymmetry entirely).
    pub fn with_turnaround_penalty(mut self, cycles: u64) -> Self {
        self.turnaround_penalty = cycles;
        self
    }

    /// The configured turnaround penalty in cycles.
    pub fn turnaround_penalty(&self) -> u64 {
        self.turnaround_penalty
    }

    /// The configured stripe width in 32-bit words.
    pub fn stripe_words(&self) -> u64 {
        self.stripe_words
    }

    /// The U200 configuration: 4 banks, 512-word stripes, the same latency
    /// and burst width as [`crate::config::DeviceConfig::alveo_u200`].
    pub fn alveo_u200() -> Self {
        DramBanks::new(4, 512, 8, 8, Interleaving::RoundRobin)
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Per-access latency in cycles — also the extra cost a bank conflict
    /// adds, which is how [`crate::DramArbiter`] converts conflict counts
    /// into conflict cycles.
    pub fn read_latency(&self) -> u64 {
        self.read_latency
    }

    /// The bank a word address maps to under the configured interleaving.
    pub fn bank_of(&self, word_addr: u64) -> usize {
        match self.interleaving {
            Interleaving::SingleBank => 0,
            Interleaving::RoundRobin => {
                ((word_addr / self.stripe_words) % self.num_banks as u64) as usize
            }
        }
    }

    /// Charges a sequential burst of `words` starting at `start_word` and
    /// returns its cost in cycles. Bursts that span several banks overlap
    /// their transfers: the cost is the largest per-bank share plus one
    /// latency, matching a shell that issues the per-bank requests in
    /// parallel. Each bank keeps its own open row (the last stripe a burst
    /// touched in it); a burst that starts on a bank holding a *different*
    /// open row is charged one extra latency (a bank conflict: precharge the
    /// old row, activate the new one) — but only when that bank served a
    /// chunk within the last `num_banks` stripe-chunks of traffic. A bank
    /// idle longer than that hides the activation behind the other banks'
    /// transfers (the point of interleaving), so sequential streams that
    /// wrap the banks stay conflict-free; conflicts come from distinct hot
    /// rows rapidly alternating on one bank. A burst whose stripe is already
    /// open in its start bank is a row-buffer hit and costs nothing extra.
    /// At most one conflict is charged per burst (at its start). Only reads
    /// contend: writes drain lazily from the controller's write buffer in
    /// row-sized batches, so they neither pay conflicts nor evict open rows
    /// (they still pay the read↔write turnaround when the bus flips).
    pub fn burst_cost(&mut self, start_word: u64, words: u64) -> u64 {
        let charge = self.burst_cost_directed(BurstDirection::Read, start_word, words);
        charge.service + charge.conflict
    }

    /// [`DramBanks::burst_cost`] with an explicit bus direction and the cost
    /// split into its components: the flat service share, the bank-conflict
    /// latency and the read↔write turnaround penalty when the direction
    /// flipped relative to the previous burst.
    pub fn burst_cost_directed(
        &mut self,
        dir: BurstDirection,
        start_word: u64,
        words: u64,
    ) -> BurstCharge {
        self.cost_directed(dir, start_word, words, true)
    }

    /// [`DramBanks::burst_cost_directed`] for *stream* traffic — the
    /// sequential spill/refill/result region (tail-append bursts). Each
    /// modelled bank is a DRAM channel with many internal banks, and a
    /// sequential stream is prefetchable: the controller streams it through
    /// internal banks of its own, so it neither pays row conflicts nor
    /// evicts the adjacency rows' open-row state. It still pays service and
    /// the read↔write turnaround, and is metered in the occupancy report.
    pub fn stream_cost_directed(
        &mut self,
        dir: BurstDirection,
        start_word: u64,
        words: u64,
    ) -> BurstCharge {
        self.cost_directed(dir, start_word, words, false)
    }

    fn cost_directed(
        &mut self,
        dir: BurstDirection,
        start_word: u64,
        words: u64,
        row_tracked: bool,
    ) -> BurstCharge {
        if words == 0 {
            return BurstCharge { service: 0, conflict: 0, turnaround: 0 };
        }
        self.accesses += 1;
        let track = row_tracked && dir == BurstDirection::Read;
        let start_bank = self.bank_of(start_word);
        let start_stripe = start_word / self.stripe_words;
        // Row-buffer check before the burst rewrites the open rows. Only
        // *reads* contend for row buffers: the DFS stalls on them, while
        // writes drain lazily from the controller's write buffer (the shell
        // keeps separate read/write paths) and reorder into row-sized
        // batches, so they neither pay nor evict open rows here. A read
        // miss stalls only when the start bank served a chunk recently
        // enough that the precharge + activate cannot hide behind the other
        // banks' transfers.
        let mut conflict = 0;
        if track {
            let recent =
                (self.tick + 1).saturating_sub(self.last_tick[start_bank]) < self.num_banks as u64;
            if recent && self.open_rows[start_bank].is_some_and(|open| open != start_stripe) {
                self.conflicts += 1;
                conflict = self.read_latency;
            }
        }
        // Distribute the words over banks stripe by stripe (reused scratch —
        // this sits on the arbiter's per-refill path); each stripe a *read*
        // sweeps becomes its bank's open row.
        self.per_bank_scratch.iter_mut().for_each(|w| *w = 0);
        let mut remaining = words;
        let mut addr = start_word;
        while remaining > 0 {
            let bank = self.bank_of(addr);
            let stripe_off = addr % self.stripe_words;
            let in_stripe = (self.stripe_words - stripe_off).min(remaining);
            self.per_bank_scratch[bank] += in_stripe;
            self.words_per_bank[bank] += in_stripe;
            if track {
                self.open_rows[bank] = Some(addr / self.stripe_words);
                self.tick += 1;
                self.last_tick[bank] = self.tick;
            }
            addr += in_stripe;
            remaining -= in_stripe;
        }
        let max_share = self.per_bank_scratch.iter().copied().max().unwrap_or(0);
        let service = self.read_latency + max_share.div_ceil(self.burst_words_per_cycle);

        let mut turnaround = 0;
        if self.last_dir.is_some_and(|last| last != dir) {
            self.turnarounds += 1;
            turnaround = self.turnaround_penalty;
        }
        self.last_dir = Some(dir);
        BurstCharge { service, conflict, turnaround }
    }

    /// Number of bank conflicts recorded so far (cheaper than a full
    /// [`DramBanks::report`] on the arbiter's per-refill path).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of read↔write direction flips recorded so far.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds
    }

    /// Report of the activity so far.
    pub fn report(&self) -> BankReport {
        BankReport {
            accesses: self.accesses,
            conflicts: self.conflicts,
            turnarounds: self.turnarounds,
            max_bank_words: self.words_per_bank.iter().copied().max().unwrap_or(0),
            min_bank_words: self.words_per_bank.iter().copied().min().unwrap_or(0),
        }
    }

    /// Clears occupancy and statistics.
    pub fn reset(&mut self) {
        self.words_per_bank.iter_mut().for_each(|w| *w = 0);
        self.conflicts = 0;
        self.accesses = 0;
        self.turnarounds = 0;
        self.open_rows.iter_mut().for_each(|r| *r = None);
        self.tick = 0;
        self.last_tick.iter_mut().for_each(|t| *t = 0);
        self.last_dir = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_striping_cycles_through_banks() {
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        assert_eq!(banks.bank_of(0), 0);
        assert_eq!(banks.bank_of(7), 0);
        assert_eq!(banks.bank_of(8), 1);
        assert_eq!(banks.bank_of(16), 2);
        assert_eq!(banks.bank_of(24), 3);
        assert_eq!(banks.bank_of(32), 0);
    }

    #[test]
    fn single_bank_maps_everything_to_bank_zero() {
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        for addr in [0u64, 5, 100, 10_000] {
            assert_eq!(banks.bank_of(addr), 0);
        }
    }

    #[test]
    fn striped_burst_is_cheaper_than_single_bank_burst() {
        let mut striped = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        let mut single = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        // 64 words spread over 4 banks: each bank serves 16 words in parallel.
        let c_striped = striped.burst_cost(0, 64);
        let c_single = single.burst_cost(0, 64);
        assert!(c_striped < c_single, "{c_striped} !< {c_single}");
        assert_eq!(c_striped, 8 + 16u64.div_ceil(8));
        assert_eq!(c_single, 8 + 64u64.div_ceil(8));
    }

    #[test]
    fn zero_word_burst_is_free_and_not_counted() {
        let mut banks = DramBanks::alveo_u200();
        assert_eq!(banks.burst_cost(0, 0), 0);
        assert_eq!(banks.report().accesses, 0);
    }

    #[test]
    fn repeated_same_bank_bursts_record_conflicts() {
        let mut banks = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        banks.burst_cost(0, 8);
        // A different stripe on the same bank closes the open row: conflict.
        let c2 = banks.burst_cost(8, 8);
        let report = banks.report();
        assert_eq!(report.conflicts, 1);
        // The conflicting burst pays the latency twice.
        assert_eq!(c2, 8 + 1 + 8);
        // Re-reading the stripe the last burst ended in is a row-buffer hit.
        let c3 = banks.burst_cost(8, 8);
        assert_eq!(c3, 8 + 1);
        assert_eq!(banks.report().conflicts, 1);
    }

    #[test]
    fn occupancy_is_balanced_under_round_robin() {
        let mut banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        banks.burst_cost(0, 32 * 8);
        let report = banks.report();
        assert_eq!(report.max_bank_words, report.min_bank_words);
    }

    #[test]
    fn reset_clears_all_accounting() {
        let mut banks = DramBanks::alveo_u200();
        banks.burst_cost(0, 100);
        banks.reset();
        let report = banks.report();
        assert_eq!(report.accesses, 0);
        assert_eq!(report.conflicts, 0);
        assert_eq!(report.max_bank_words, 0);
    }

    #[test]
    #[should_panic(expected = "at least one DRAM bank")]
    fn zero_banks_are_rejected() {
        DramBanks::new(0, 8, 8, 8, Interleaving::RoundRobin);
    }

    #[test]
    fn direction_flip_pays_the_turnaround_penalty_once_per_flip() {
        let mut banks =
            DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin).with_turnaround_penalty(5);
        let first = banks.burst_cost_directed(BurstDirection::Read, 0, 8);
        assert_eq!(first.turnaround, 0, "the first burst has no direction to flip from");
        let same = banks.burst_cost_directed(BurstDirection::Read, 8, 8);
        assert_eq!(same.turnaround, 0);
        let flip = banks.burst_cost_directed(BurstDirection::Write, 16, 8);
        assert_eq!(flip.turnaround, 5);
        let flip_back = banks.burst_cost_directed(BurstDirection::Read, 24, 8);
        assert_eq!(flip_back.turnaround, 5);
        assert_eq!(banks.turnarounds(), 2);
        assert_eq!(banks.report().turnarounds, 2);
    }

    #[test]
    fn legacy_burst_cost_is_the_read_path_without_turnarounds() {
        // The undirected entry point pins every burst to Read, so direction
        // flips can never occur and the pre-turnaround costs are reproduced
        // exactly (conflict latency included, as before).
        let mut legacy = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        let mut directed = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        for (start, words) in [(0u64, 8u64), (0, 8), (4, 12), (100, 3)] {
            let cost = legacy.burst_cost(start, words);
            let charge = directed.burst_cost_directed(BurstDirection::Read, start, words);
            assert_eq!(cost, charge.service + charge.conflict);
            assert_eq!(charge.turnaround, 0);
        }
        assert_eq!(legacy.turnarounds(), 0);
    }

    #[test]
    fn zero_turnaround_penalty_disables_the_asymmetry() {
        let mut banks =
            DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin).with_turnaround_penalty(0);
        banks.burst_cost_directed(BurstDirection::Read, 0, 8);
        let flip = banks.burst_cost_directed(BurstDirection::Write, 8, 8);
        assert_eq!(flip.turnaround, 0);
        // The flip is still *counted* — only its charge is zero.
        assert_eq!(banks.turnarounds(), 1);
    }
}
