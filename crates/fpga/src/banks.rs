//! Multi-bank DRAM model.
//!
//! The Alveo U200 the paper runs on carries four 16 GB DDR4 banks. The single
//! [`crate::Dram`] latency model is enough for the headline experiments, but
//! the buffer-and-batch design decisions (how big a flush, how big a fetch)
//! also interact with *where* the data lands: spreading sequential bursts
//! round-robin across banks multiplies effective bandwidth, while repeatedly
//! hitting the same bank serialises them. This module models that effect so
//! the ablation benches can show the sensitivity of PEFP to DRAM layout.

use serde::{Deserialize, Serialize};

/// Address-to-bank interleaving policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleaving {
    /// Consecutive stripes of `stripe_words` go to consecutive banks
    /// (round-robin). This is how the paper's separate read/write buffers are
    /// mapped by the shell.
    RoundRobin,
    /// Everything goes to bank 0 — the pathological layout used as the
    /// "no banking" ablation.
    SingleBank,
}

/// A set of DRAM banks with per-bank occupancy and conflict accounting.
#[derive(Debug, Clone)]
pub struct DramBanks {
    num_banks: usize,
    stripe_words: u64,
    read_latency: u64,
    burst_words_per_cycle: u64,
    interleaving: Interleaving,
    /// Words stored per bank (capacity accounting only; contents live in the
    /// engine's ordinary Rust structures).
    words_per_bank: Vec<u64>,
    conflicts: u64,
    accesses: u64,
    /// Bank the previous burst ended on (conflict detection state).
    last_end_bank: Option<usize>,
    /// Reused per-burst distribution buffer (no allocation per access).
    per_bank_scratch: Vec<u64>,
}

/// Summary of bank activity for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankReport {
    /// Number of burst accesses issued.
    pub accesses: u64,
    /// Number of accesses that collided with the previously used bank.
    pub conflicts: u64,
    /// Words resident per bank at the time of the report.
    pub max_bank_words: u64,
    /// Words resident in the least loaded bank.
    pub min_bank_words: u64,
}

impl DramBanks {
    /// Creates `num_banks` banks with the given stripe width (in 32-bit
    /// words), per-access latency and burst bandwidth.
    pub fn new(
        num_banks: usize,
        stripe_words: u64,
        read_latency: u64,
        burst_words_per_cycle: u64,
        interleaving: Interleaving,
    ) -> Self {
        assert!(num_banks > 0, "at least one DRAM bank is required");
        assert!(stripe_words > 0, "stripe width must be positive");
        DramBanks {
            num_banks,
            stripe_words,
            read_latency,
            burst_words_per_cycle: burst_words_per_cycle.max(1),
            interleaving,
            words_per_bank: vec![0; num_banks],
            conflicts: 0,
            accesses: 0,
            last_end_bank: None,
            per_bank_scratch: vec![0; num_banks],
        }
    }

    /// The U200 configuration: 4 banks, 512-word stripes, the same latency
    /// and burst width as [`crate::config::DeviceConfig::alveo_u200`].
    pub fn alveo_u200() -> Self {
        DramBanks::new(4, 512, 8, 8, Interleaving::RoundRobin)
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Per-access latency in cycles — also the extra cost a bank conflict
    /// adds, which is how [`crate::DramArbiter`] converts conflict counts
    /// into conflict cycles.
    pub fn read_latency(&self) -> u64 {
        self.read_latency
    }

    /// The bank a word address maps to under the configured interleaving.
    pub fn bank_of(&self, word_addr: u64) -> usize {
        match self.interleaving {
            Interleaving::SingleBank => 0,
            Interleaving::RoundRobin => {
                ((word_addr / self.stripe_words) % self.num_banks as u64) as usize
            }
        }
    }

    /// Charges a sequential burst of `words` starting at `start_word` and
    /// returns its cost in cycles. Bursts that span several banks overlap
    /// their transfers: the cost is the largest per-bank share plus one
    /// latency, matching a shell that issues the per-bank requests in
    /// parallel. A burst that starts on the bank the *previous* burst ended
    /// on is charged one extra latency (a bank conflict: the row buffer is
    /// still busy draining).
    pub fn burst_cost(&mut self, start_word: u64, words: u64) -> u64 {
        if words == 0 {
            return 0;
        }
        self.accesses += 1;
        let start_bank = self.bank_of(start_word);
        // Distribute the words over banks stripe by stripe (reused scratch —
        // this sits on the arbiter's per-refill path).
        self.per_bank_scratch.iter_mut().for_each(|w| *w = 0);
        let mut remaining = words;
        let mut addr = start_word;
        while remaining > 0 {
            let bank = self.bank_of(addr);
            let stripe_off = addr % self.stripe_words;
            let in_stripe = (self.stripe_words - stripe_off).min(remaining);
            self.per_bank_scratch[bank] += in_stripe;
            self.words_per_bank[bank] += in_stripe;
            addr += in_stripe;
            remaining -= in_stripe;
        }
        let max_share = self.per_bank_scratch.iter().copied().max().unwrap_or(0);
        let mut cost = self.read_latency + max_share.div_ceil(self.burst_words_per_cycle);

        if self.last_end_bank == Some(start_bank) {
            self.conflicts += 1;
            cost += self.read_latency;
        }
        self.last_end_bank = Some(self.bank_of(start_word + words - 1));
        cost
    }

    /// Number of bank conflicts recorded so far (cheaper than a full
    /// [`DramBanks::report`] on the arbiter's per-refill path).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Report of the activity so far.
    pub fn report(&self) -> BankReport {
        BankReport {
            accesses: self.accesses,
            conflicts: self.conflicts,
            max_bank_words: self.words_per_bank.iter().copied().max().unwrap_or(0),
            min_bank_words: self.words_per_bank.iter().copied().min().unwrap_or(0),
        }
    }

    /// Clears occupancy and statistics.
    pub fn reset(&mut self) {
        self.words_per_bank.iter_mut().for_each(|w| *w = 0);
        self.conflicts = 0;
        self.accesses = 0;
        self.last_end_bank = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_striping_cycles_through_banks() {
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        assert_eq!(banks.bank_of(0), 0);
        assert_eq!(banks.bank_of(7), 0);
        assert_eq!(banks.bank_of(8), 1);
        assert_eq!(banks.bank_of(16), 2);
        assert_eq!(banks.bank_of(24), 3);
        assert_eq!(banks.bank_of(32), 0);
    }

    #[test]
    fn single_bank_maps_everything_to_bank_zero() {
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        for addr in [0u64, 5, 100, 10_000] {
            assert_eq!(banks.bank_of(addr), 0);
        }
    }

    #[test]
    fn striped_burst_is_cheaper_than_single_bank_burst() {
        let mut striped = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        let mut single = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        // 64 words spread over 4 banks: each bank serves 16 words in parallel.
        let c_striped = striped.burst_cost(0, 64);
        let c_single = single.burst_cost(0, 64);
        assert!(c_striped < c_single, "{c_striped} !< {c_single}");
        assert_eq!(c_striped, 8 + 16u64.div_ceil(8));
        assert_eq!(c_single, 8 + 64u64.div_ceil(8));
    }

    #[test]
    fn zero_word_burst_is_free_and_not_counted() {
        let mut banks = DramBanks::alveo_u200();
        assert_eq!(banks.burst_cost(0, 0), 0);
        assert_eq!(banks.report().accesses, 0);
    }

    #[test]
    fn repeated_same_bank_bursts_record_conflicts() {
        let mut banks = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        banks.burst_cost(0, 8);
        let c2 = banks.burst_cost(0, 8);
        let report = banks.report();
        assert_eq!(report.conflicts, 1);
        // The conflicting burst pays the latency twice.
        assert_eq!(c2, 8 + 1 + 8);
    }

    #[test]
    fn occupancy_is_balanced_under_round_robin() {
        let mut banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        banks.burst_cost(0, 32 * 8);
        let report = banks.report();
        assert_eq!(report.max_bank_words, report.min_bank_words);
    }

    #[test]
    fn reset_clears_all_accounting() {
        let mut banks = DramBanks::alveo_u200();
        banks.burst_cost(0, 100);
        banks.reset();
        let report = banks.report();
        assert_eq!(report.accesses, 0);
        assert_eq!(report.conflicts, 0);
        assert_eq!(report.max_bank_words, 0);
    }

    #[test]
    #[should_panic(expected = "at least one DRAM bank")]
    fn zero_banks_are_rejected() {
        DramBanks::new(0, 8, 8, 8, Interleaving::RoundRobin);
    }
}
