//! Shared-DRAM bandwidth arbiter for multi-CU deployments.
//!
//! The card's off-chip DRAM is one memory system shared by every compute
//! unit: replicating the PEFP kernel multiplies compute but not bandwidth, so
//! once the aggregated refill traffic of the active CUs exceeds what the
//! memory controllers deliver, every transfer slows down proportionally. PR 3
//! modelled this with a closed-form end-of-batch correction
//! (`max(1, active_cus × per_cu_bandwidth_share)` applied to *all* cycles);
//! this module replaces that with **per-refill accounting**: each CU's
//! [`crate::Device`] reports every DRAM transfer it performs to the shared
//! [`DramArbiter`], which inflates *that transfer's* cycle cost by the
//! contention factor derived from how many CUs are concurrently active. Only
//! cycles genuinely spent on the DRAM bus are penalised — BRAM traffic and
//! pipeline compute are private to each CU and run at full speed — which is
//! why measured multi-CU makespans beat the old closed-form prediction on
//! cache-friendly workloads.
//!
//! The arbiter is shared across OS threads (one per CU in the host's
//! dispatch mode), so all of its state is atomic; the accounting is
//! intentionally lock-free and approximate in the same way real memory
//! controllers are: the factor seen by a refill depends on the set of CUs
//! active at that moment.

use crate::banks::{BankReport, BurstDirection, DramBanks};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Aggregate refill traffic metered by a [`DramArbiter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Number of DRAM transfers (reads + writes) metered.
    pub refills: u64,
    /// Total 32-bit words moved across the shared bus.
    pub words: u64,
    /// Extra cycles injected into CU clocks by bandwidth contention.
    pub penalty_cycles: u64,
    /// Refills that collided with the bank the previous refill ended on
    /// (only metered when the arbiter routes traffic through a
    /// [`DramBanks`] interleaving model; 0 otherwise).
    pub bank_conflicts: u64,
    /// Extra cycles those bank conflicts cost (one bank latency each).
    /// Always metered; charged to CU clocks only when the arbiter was built
    /// with banked charging enabled ([`DramArbiter::with_banks_charged`]) —
    /// otherwise the headline bandwidth-sharing law stays the sole timing
    /// effect, preserving the pre-charging cycle counts exactly.
    pub bank_conflict_cycles: u64,
    /// Refills that flipped the bus direction (read↔write turnaround).
    pub turnarounds: u64,
    /// Extra cycles those direction flips cost. Metered and charged under
    /// the same rules as `bank_conflict_cycles`.
    pub turnaround_cycles: u64,
}

/// Per-refill cost breakdown returned by
/// [`DramArbiter::record_refill_directed`]: the contention stall is always
/// charged by the caller; the banked components are charged only when
/// [`DramArbiter::charges_banks`] is true (they are still metered either way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefillBreakdown {
    /// Bandwidth-sharing stall (`base × (factor − 1)`).
    pub contention: u64,
    /// Bank-conflict latency of this refill.
    pub conflict: u64,
    /// Read↔write turnaround latency of this refill.
    pub turnaround: u64,
}

impl RefillBreakdown {
    /// The banked share of the stall (conflict + turnaround).
    pub fn banked_stall(&self) -> u64 {
        self.conflict + self.turnaround
    }
}

/// Shared-DRAM bandwidth meter for one multi-CU card.
///
/// One arbiter per card; every CU's device holds a handle to it (see
/// [`crate::multi_cu::CuCluster`]). A CU marks itself active for the duration
/// of a query via [`DramArbiter::activate`]; every DRAM transfer then pays
/// `base_cycles × (factor − 1)` extra cycles, where
/// `factor = max(1, active_cus × per_cu_bandwidth_share)` — the same
/// saturation law as the PR-3 closed form, but applied per refill to DRAM
/// cycles only.
#[derive(Debug)]
pub struct DramArbiter {
    /// Fraction of the card's total DRAM bandwidth one CU can absorb alone.
    share: f64,
    /// CUs currently executing a query (holding a [`CuActivation`]).
    active: AtomicUsize,
    refills: AtomicU64,
    words: AtomicU64,
    penalty_cycles: AtomicU64,
    /// Optional per-bank interleaving model: every metered refill is routed
    /// through the address map as one sequential burst (the cursor tracks
    /// where the previous burst ended, matching the tail-append layout of the
    /// DRAM path set), so same-bank back-to-back conflicts become visible in
    /// [`ArbiterStats`].
    banks: Option<Mutex<BankCursor>>,
    /// Whether the banked components (conflicts, turnarounds) are *charged*
    /// to CU clocks rather than only metered. Off by default: charging is an
    /// opt-in timing-model change gated by
    /// [`crate::multi_cu::MultiCuConfig::charge_banked`].
    charge_banked: bool,
    bank_conflicts: AtomicU64,
    bank_conflict_cycles: AtomicU64,
    turnarounds: AtomicU64,
    turnaround_cycles: AtomicU64,
}

/// The bank model plus the running word address of the refill stream.
#[derive(Debug)]
struct BankCursor {
    banks: DramBanks,
    next_word: u64,
}

impl DramArbiter {
    /// Creates an arbiter where each CU can absorb `per_cu_bandwidth_share`
    /// of the total DRAM bandwidth on its own (0.5 means two concurrently
    /// active CUs already saturate the memory system).
    pub fn new(per_cu_bandwidth_share: f64) -> Self {
        assert!(
            per_cu_bandwidth_share.is_finite() && per_cu_bandwidth_share >= 0.0,
            "bandwidth share must be a finite non-negative fraction"
        );
        DramArbiter {
            share: per_cu_bandwidth_share,
            active: AtomicUsize::new(0),
            refills: AtomicU64::new(0),
            words: AtomicU64::new(0),
            penalty_cycles: AtomicU64::new(0),
            banks: None,
            charge_banked: false,
            bank_conflicts: AtomicU64::new(0),
            bank_conflict_cycles: AtomicU64::new(0),
            turnarounds: AtomicU64::new(0),
            turnaround_cycles: AtomicU64::new(0),
        }
    }

    /// [`DramArbiter::new`] with a [`DramBanks`] interleaving model attached:
    /// every metered refill is additionally routed through the bank map and
    /// the per-bank conflict accounting is surfaced in [`ArbiterStats`].
    pub fn with_banks(per_cu_bandwidth_share: f64, banks: DramBanks) -> Self {
        let mut arbiter = DramArbiter::new(per_cu_bandwidth_share);
        arbiter.banks = Some(Mutex::new(BankCursor { banks, next_word: 0 }));
        arbiter
    }

    /// [`DramArbiter::with_banks`] with banked *charging* enabled: the
    /// conflict and turnaround cycles every refill accrues are returned to
    /// the issuing device as stall cycles to pay on its own clock, instead
    /// of being surfaced as observational counters only.
    pub fn with_banks_charged(per_cu_bandwidth_share: f64, banks: DramBanks) -> Self {
        let mut arbiter = DramArbiter::with_banks(per_cu_bandwidth_share, banks);
        arbiter.charge_banked = true;
        arbiter
    }

    /// Whether refills are routed through a bank interleaving model.
    pub fn has_banks(&self) -> bool {
        self.banks.is_some()
    }

    /// Whether banked latency (conflicts + turnarounds) is charged to CU
    /// clocks rather than only metered.
    pub fn charges_banks(&self) -> bool {
        self.charge_banked && self.banks.is_some()
    }

    /// Bank geometry `(num_banks, stripe_words)` when a bank model is
    /// attached — what a layout pass needs to place rows deliberately.
    pub fn bank_geometry(&self) -> Option<(usize, u64)> {
        self.banks.as_ref().map(|cursor| {
            let cursor = cursor.lock().expect("bank cursor poisoned");
            (cursor.banks.num_banks(), cursor.banks.stripe_words())
        })
    }

    /// The bank model's activity report, when one is attached.
    pub fn bank_report(&self) -> Option<BankReport> {
        self.banks
            .as_ref()
            .map(|cursor| cursor.lock().expect("bank cursor poisoned").banks.report())
    }

    /// The configured per-CU bandwidth share.
    pub fn per_cu_bandwidth_share(&self) -> f64 {
        self.share
    }

    /// Marks one CU active until the returned guard is dropped.
    pub fn activate(self: &Arc<Self>) -> CuActivation {
        self.active.fetch_add(1, Ordering::SeqCst);
        CuActivation { arbiter: Arc::clone(self) }
    }

    /// Number of CUs currently holding an activation.
    pub fn active_cus(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The contention factor a refill issued right now would pay:
    /// `max(1, active_cus × share)`.
    pub fn contention_factor(&self) -> f64 {
        (self.active_cus().max(1) as f64 * self.share).max(1.0)
    }

    /// Meters one DRAM transfer of `words` words whose uncontended cost is
    /// `base_cycles`, and returns the *extra* cycles the issuing CU must
    /// stall for under the current contention. Pre-charging entry point: the
    /// transfer is treated as a read on the tail-append refill stream, so
    /// observational bank metering is byte-identical to the historical
    /// behaviour.
    pub fn record_refill(&self, words: u64, base_cycles: u64) -> u64 {
        self.record_refill_directed(BurstDirection::Read, None, words, base_cycles).contention
    }

    /// Meters one DRAM transfer with an explicit bus direction and an
    /// optional placed word address. `None` appends the transfer to the
    /// arbiter's sequential refill stream (buffer spills, batch fetches,
    /// result writes — the historical tail-append cursor); `Some(addr)`
    /// meters a burst at a deliberately *placed* address (an adjacency row
    /// under a CSR layout) without disturbing the tail cursor.
    ///
    /// The contention component of the returned breakdown must always be
    /// paid by the caller; the conflict and turnaround components only when
    /// [`DramArbiter::charges_banks`] is true.
    pub fn record_refill_directed(
        &self,
        dir: BurstDirection,
        addr: Option<u64>,
        words: u64,
        base_cycles: u64,
    ) -> RefillBreakdown {
        self.refills.fetch_add(1, Ordering::Relaxed);
        self.words.fetch_add(words, Ordering::Relaxed);
        let mut breakdown = RefillBreakdown::default();
        if let Some(cursor) = &self.banks {
            // The critical section is a handful of arithmetic ops on the
            // reused bank state (no allocation, no report building), so the
            // lock does not meaningfully serialise the refill path.
            let mut cursor = cursor.lock().expect("bank cursor poisoned");
            // Placed bursts (adjacency rows at deliberate addresses) contend
            // for the per-bank row buffers; tail-append bursts are the
            // sequential stream region, which the controller prefetches —
            // they pay service + turnaround but no row conflicts.
            let charge = match addr {
                Some(placed) => cursor.banks.burst_cost_directed(dir, placed, words),
                None => {
                    let start = cursor.next_word;
                    cursor.next_word = start + words;
                    cursor.banks.stream_cost_directed(dir, start, words)
                }
            };
            if charge.conflict > 0 {
                self.bank_conflicts.fetch_add(1, Ordering::Relaxed);
                self.bank_conflict_cycles.fetch_add(charge.conflict, Ordering::Relaxed);
            }
            if charge.turnaround > 0 {
                self.turnarounds.fetch_add(1, Ordering::Relaxed);
                self.turnaround_cycles.fetch_add(charge.turnaround, Ordering::Relaxed);
            }
            breakdown.conflict = charge.conflict;
            breakdown.turnaround = charge.turnaround;
        }
        breakdown.contention =
            ((self.contention_factor() - 1.0) * base_cycles as f64).round() as u64;
        if breakdown.contention > 0 {
            self.penalty_cycles.fetch_add(breakdown.contention, Ordering::Relaxed);
        }
        breakdown
    }

    /// Aggregate traffic metered so far.
    pub fn stats(&self) -> ArbiterStats {
        ArbiterStats {
            refills: self.refills.load(Ordering::Relaxed),
            words: self.words.load(Ordering::Relaxed),
            penalty_cycles: self.penalty_cycles.load(Ordering::Relaxed),
            bank_conflicts: self.bank_conflicts.load(Ordering::Relaxed),
            bank_conflict_cycles: self.bank_conflict_cycles.load(Ordering::Relaxed),
            turnarounds: self.turnarounds.load(Ordering::Relaxed),
            turnaround_cycles: self.turnaround_cycles.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard marking one CU as active on the shared bus.
#[derive(Debug)]
pub struct CuActivation {
    arbiter: Arc<DramArbiter>,
}

impl Drop for CuActivation {
    fn drop(&mut self) {
        self.arbiter.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One CU's handle to the card's shared arbiter, carried by its
/// [`crate::Device`]. Cloning the handle keeps pointing at the same arbiter.
#[derive(Debug, Clone)]
pub struct ArbiterHandle {
    arbiter: Arc<DramArbiter>,
    cu: usize,
}

impl ArbiterHandle {
    /// Creates a handle for compute unit `cu`.
    pub fn new(arbiter: Arc<DramArbiter>, cu: usize) -> Self {
        ArbiterHandle { arbiter, cu }
    }

    /// The compute unit this handle belongs to.
    pub fn cu(&self) -> usize {
        self.cu
    }

    /// The shared arbiter.
    pub fn arbiter(&self) -> &Arc<DramArbiter> {
        &self.arbiter
    }

    /// Meters one DRAM transfer; see [`DramArbiter::record_refill`].
    pub fn record_refill(&self, words: u64, base_cycles: u64) -> u64 {
        self.arbiter.record_refill(words, base_cycles)
    }

    /// Meters one directed (and optionally placed) DRAM transfer; see
    /// [`DramArbiter::record_refill_directed`].
    pub fn record_refill_directed(
        &self,
        dir: BurstDirection,
        addr: Option<u64>,
        words: u64,
        base_cycles: u64,
    ) -> RefillBreakdown {
        self.arbiter.record_refill_directed(dir, addr, words, base_cycles)
    }

    /// Whether the arbiter charges banked latency to CU clocks.
    pub fn charges_banks(&self) -> bool {
        self.arbiter.charges_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_arbiter_charges_no_penalty() {
        let a = Arc::new(DramArbiter::new(0.5));
        // No activation, or a single active CU at share <= 1: factor is 1.
        assert_eq!(a.record_refill(64, 40), 0);
        let _g = a.activate();
        assert_eq!(a.record_refill(64, 40), 0);
        let stats = a.stats();
        assert_eq!(stats.refills, 2);
        assert_eq!(stats.words, 128);
        assert_eq!(stats.penalty_cycles, 0);
    }

    #[test]
    fn saturated_bus_inflates_refills_proportionally() {
        let a = Arc::new(DramArbiter::new(0.5));
        let guards: Vec<_> = (0..4).map(|_| a.activate()).collect();
        assert_eq!(a.active_cus(), 4);
        // 4 CUs x 0.5 share = factor 2: every refill doubles in cost.
        assert!((a.contention_factor() - 2.0).abs() < 1e-12);
        assert_eq!(a.record_refill(16, 100), 100);
        assert_eq!(a.stats().penalty_cycles, 100);
        drop(guards);
        assert_eq!(a.active_cus(), 0);
        assert_eq!(a.record_refill(16, 100), 0);
    }

    #[test]
    fn activation_guard_is_scoped() {
        let a = Arc::new(DramArbiter::new(1.0));
        {
            let _one = a.activate();
            {
                let _two = a.activate();
                assert!((a.contention_factor() - 2.0).abs() < 1e-12);
            }
            assert!((a.contention_factor() - 1.0).abs() < 1e-12);
        }
        assert_eq!(a.active_cus(), 0);
    }

    #[test]
    fn zero_share_never_penalises() {
        let a = Arc::new(DramArbiter::new(0.0));
        let _guards: Vec<_> = (0..8).map(|_| a.activate()).collect();
        assert_eq!(a.record_refill(1024, 10_000), 0);
    }

    #[test]
    fn handles_share_one_arbiter_across_threads() {
        let a = Arc::new(DramArbiter::new(0.5));
        let handles: Vec<ArbiterHandle> =
            (0..4).map(|cu| ArbiterHandle::new(Arc::clone(&a), cu)).collect();
        std::thread::scope(|scope| {
            for h in &handles {
                scope.spawn(move || {
                    let _active = h.arbiter().activate();
                    for _ in 0..100 {
                        h.record_refill(8, 10);
                    }
                });
            }
        });
        let stats = a.stats();
        assert_eq!(stats.refills, 400);
        assert_eq!(stats.words, 3_200);
        // With up to 4 concurrently active CUs at share 0.5 the factor is at
        // most 2, so at most base cycles again in penalties.
        assert!(stats.penalty_cycles <= 4_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth share")]
    fn negative_share_is_rejected() {
        DramArbiter::new(-0.1);
    }

    #[test]
    fn bankless_arbiter_reports_no_bank_activity() {
        let a = Arc::new(DramArbiter::new(0.5));
        a.record_refill(64, 40);
        assert!(!a.has_banks());
        assert!(a.bank_report().is_none());
        assert_eq!(a.stats().bank_conflicts, 0);
        assert_eq!(a.stats().bank_conflict_cycles, 0);
    }

    #[test]
    fn banked_refills_follow_the_interleaving_map() {
        use crate::banks::{DramBanks, Interleaving};
        // 4 banks, 8-word stripes: a 32-word refill touches every bank once.
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        let a = Arc::new(DramArbiter::with_banks(0.5, banks));
        a.record_refill(32, 12);
        let report = a.bank_report().expect("banks attached");
        assert_eq!(report.accesses, 1);
        assert_eq!(report.max_bank_words, report.min_bank_words, "striped evenly");
        // Tail-append refills are the sequential stream region: prefetchable
        // by the controller, they never pay row conflicts.
        for _ in 0..8 {
            a.record_refill(8, 10);
        }
        assert_eq!(a.bank_report().unwrap().accesses, 9);
        assert_eq!(a.stats().bank_conflicts, 0);
    }

    #[test]
    fn single_bank_interleaving_surfaces_conflict_cycles() {
        use crate::banks::{DramBanks, Interleaving};
        let latency = 8;
        let banks = DramBanks::new(4, 8, latency, 8, Interleaving::SingleBank);
        let a = Arc::new(DramArbiter::with_banks(0.5, banks));
        // Placed row reads on SingleBank: every read lands on bank 0, and
        // each opens a different stripe — a row miss for every read after
        // the first.
        for row in 0..5u64 {
            a.record_refill_directed(BurstDirection::Read, Some(row * 8), 8, 10);
        }
        let stats = a.stats();
        assert_eq!(stats.bank_conflicts, 4);
        assert_eq!(stats.bank_conflict_cycles, 4 * latency);
        assert_eq!(stats.refills, 5);
        // The conflicts are observational: the bandwidth-sharing law is still
        // the only source of injected penalty cycles.
        assert_eq!(stats.penalty_cycles, 0);
        assert!(!a.charges_banks(), "with_banks alone never charges banked latency");
    }

    #[test]
    fn charged_arbiter_returns_the_banked_stall_in_the_breakdown() {
        use crate::banks::{DramBanks, Interleaving};
        let latency = 8;
        let banks =
            DramBanks::new(4, 8, latency, 8, Interleaving::SingleBank).with_turnaround_penalty(4);
        let a = Arc::new(DramArbiter::with_banks_charged(0.5, banks));
        assert!(a.charges_banks());
        assert_eq!(a.bank_geometry(), Some((4, 8)));
        let first = a.record_refill_directed(BurstDirection::Read, Some(0), 8, 10);
        assert_eq!(first.banked_stall(), 0, "nothing to collide or flip against yet");
        let conflict = a.record_refill_directed(BurstDirection::Read, Some(8), 8, 10);
        assert_eq!(conflict.conflict, latency, "row 1 evicts row 0 on bank 0");
        assert_eq!(conflict.turnaround, 0);
        let flip = a.record_refill_directed(BurstDirection::Write, None, 8, 10);
        assert_eq!(flip.conflict, 0, "writes drain via the write buffer — no row conflict");
        assert_eq!(flip.turnaround, 4);
        let stats = a.stats();
        assert_eq!(stats.bank_conflicts, 1);
        assert_eq!(stats.turnarounds, 1);
        assert_eq!(stats.turnaround_cycles, 4);
    }

    #[test]
    fn placed_refills_do_not_disturb_the_tail_cursor() {
        use crate::banks::{DramBanks, Interleaving};
        // 4 banks, 8-word stripes, round-robin.
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
        let a = Arc::new(DramArbiter::with_banks_charged(0.5, banks));
        a.record_refill_directed(BurstDirection::Read, None, 8, 10); // tail: words 0..8
                                                                     // A placed row read opens stripe 0 on bank 0; a second placed read
                                                                     // of stripe 4 (also bank 0) right after it is a row miss.
        let opened = a.record_refill_directed(BurstDirection::Read, Some(0), 4, 10);
        assert_eq!(opened.conflict, 0, "bank 0 had no row-tracked state yet");
        let placed = a.record_refill_directed(BurstDirection::Read, Some(32), 4, 10);
        assert_eq!(placed.conflict, 8);
        // …and the tail stream resumes where it left off (words 8..16): the
        // placed bursts did not advance its cursor, and stream traffic pays
        // no row conflicts.
        let resumed = a.record_refill_directed(BurstDirection::Read, None, 8, 10);
        assert_eq!(resumed.conflict, 0);
        assert_eq!(a.stats().words, 8 + 4 + 4 + 8);
    }
}
