//! The assembled device: BRAM + DRAM + PCIe + clock + counters.
//!
//! `pefp-core` talks to the simulated card exclusively through [`Device`]:
//! it allocates BRAM regions, charges reads/writes against the right memory,
//! charges pipelined loops and dataflow regions, and finally asks for a
//! [`DeviceReport`] containing the simulated time and traffic statistics for
//! one query.

use crate::arbiter::ArbiterHandle;
use crate::banks::BurstDirection;
use crate::bram::Bram;
use crate::clock::CycleClock;
use crate::config::{DeviceConfig, MemoryKind};
use crate::counters::MemoryCounters;
use crate::dram::Dram;
use crate::fault::{FaultEvent, FaultInjector, FaultKind, Injection, TransferClass};
use crate::pcie::Pcie;
use crate::pipeline::{dataflow_cycles, pipeline_cycles, sequential_cycles};
use serde::{Deserialize, Serialize};

/// Simulated FPGA card.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    bram: Bram,
    dram: Dram,
    pcie: Pcie,
    clock: CycleClock,
    counters: MemoryCounters,
    /// Simulated seconds spent in PCIe transfers (kept separate from kernel
    /// cycles because DMA overlaps with neither the host nor the kernel in
    /// the paper's measurements).
    pcie_seconds: f64,
    /// Handle to the card's shared DRAM arbiter when this device is one CU of
    /// a [`crate::multi_cu::CuCluster`]; `None` for a standalone device.
    arbiter: Option<ArbiterHandle>,
    /// Uncontended cycles spent on DRAM transfers (the shared-bus share of
    /// the clock, before contention stalls).
    dram_busy_cycles: u64,
    /// Extra stall cycles injected by the shared-DRAM arbiter.
    contention_cycles: u64,
    /// Bank-conflict stall cycles charged to this device's clock (0 unless
    /// the attached arbiter charges banked latency).
    bank_conflict_cycles: u64,
    /// Read↔write turnaround stall cycles charged to this device's clock
    /// (0 unless the attached arbiter charges banked latency).
    turnaround_cycles: u64,
    /// Fault stream for this device instantiation, when the card runs under
    /// a [`crate::fault::FaultPlan`]; `None` for a fault-free device.
    injector: Option<FaultInjector>,
    /// First detected fault, latched until [`Device::reset_query_state`]. The
    /// simulated transfer checksums raise it; the engine polls it at batch
    /// boundaries and aborts instead of computing with corrupted data.
    pending_fault: Option<FaultEvent>,
    /// Extra cycles injected by transient CU stalls (included in `cycles`).
    injected_stall_cycles: u64,
}

/// Summary of one query's device activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Kernel cycles consumed.
    pub cycles: u64,
    /// Kernel time in simulated milliseconds.
    pub kernel_millis: f64,
    /// PCIe transfer time in simulated milliseconds.
    pub pcie_millis: f64,
    /// Total simulated device time (kernel + PCIe) in milliseconds.
    pub total_millis: f64,
    /// Memory traffic counters.
    pub counters: MemoryCounters,
    /// Bytes of BRAM currently allocated.
    pub bram_used: usize,
    /// BRAM capacity in bytes.
    pub bram_capacity: usize,
    /// Uncontended cycles spent on DRAM transfers — the share of `cycles` a
    /// saturated multi-CU memory system can slow down.
    pub dram_cycles: u64,
    /// Stall cycles injected by a shared-DRAM arbiter (0 for a standalone
    /// device; included in `cycles`).
    pub contention_cycles: u64,
    /// Bank-conflict stall cycles charged by the arbiter's bank model
    /// (0 unless banked charging is enabled; included in `cycles`).
    pub bank_conflict_cycles: u64,
    /// Read↔write turnaround stall cycles charged by the arbiter's bank
    /// model (0 unless banked charging is enabled; included in `cycles`).
    pub turnaround_cycles: u64,
    /// First fault the transfer checksums detected during the query, if any.
    /// A report with a fault describes an *aborted* run whose timing and
    /// results must not be trusted.
    pub fault: Option<FaultEvent>,
    /// Extra cycles injected by transient CU stalls (included in `cycles`).
    pub injected_stall_cycles: u64,
}

impl Device {
    /// Instantiates a device from a configuration profile.
    pub fn new(config: DeviceConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid device config: {problems:?}");
        let bram =
            Bram::new(config.bram_bytes, config.bram_read_latency, config.bram_write_latency);
        let dram = Dram::new(
            config.dram_bytes,
            config.dram_read_latency,
            config.dram_write_latency,
            config.dram_burst_words_per_cycle,
        );
        let pcie = Pcie::new(config.pcie_gbps, config.pcie_setup_us);
        Device {
            config,
            bram,
            dram,
            pcie,
            clock: CycleClock::new(),
            counters: MemoryCounters::new(),
            pcie_seconds: 0.0,
            arbiter: None,
            dram_busy_cycles: 0,
            contention_cycles: 0,
            bank_conflict_cycles: 0,
            turnaround_cycles: 0,
            injector: None,
            pending_fault: None,
            injected_stall_cycles: 0,
        }
    }

    /// Wires this device to a shared DRAM arbiter: every DRAM transfer is
    /// metered and pays the contention stalls the arbiter dictates. Used by
    /// [`crate::multi_cu::CuCluster`] when the device is one CU of a card.
    pub fn attach_arbiter(&mut self, handle: ArbiterHandle) {
        self.arbiter = Some(handle);
    }

    /// The shared-arbiter handle, when this device is part of a cluster.
    pub fn arbiter(&self) -> Option<&ArbiterHandle> {
        self.arbiter.as_ref()
    }

    /// Wires this device to a fault plan's per-instantiation stream: every
    /// DRAM refill and PCIe DMA becomes a fault opportunity, and detected
    /// faults latch into [`Device::pending_fault`].
    pub fn attach_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The first fault the transfer checksums detected, if any. Latched: once
    /// a run faults it stays faulted until [`Device::reset_query_state`].
    pub fn pending_fault(&self) -> Option<FaultEvent> {
        self.pending_fault
    }

    /// The compute unit this device simulates, when it runs under a fault
    /// plan or shared arbiter (`None` for a plain standalone device).
    pub fn cu_index(&self) -> Option<usize> {
        self.injector
            .as_ref()
            .map(FaultInjector::cu)
            .or_else(|| self.arbiter.as_ref().map(ArbiterHandle::cu))
    }

    /// Latches a fault detected *outside* the device's own checksums — the
    /// engine's cycle-progress watchdog uses this to record a hang.
    pub fn raise_fault(&mut self, kind: FaultKind) -> FaultEvent {
        let event =
            FaultEvent { cu: self.cu_index().unwrap_or(0), kind, at_cycle: self.clock.cycles() };
        if self.pending_fault.is_none() {
            self.pending_fault = Some(event);
        }
        self.pending_fault.unwrap_or(event)
    }

    /// Draws the fault decision for one transfer and applies it: stalls burn
    /// extra cycles, detected faults latch into `pending_fault`.
    fn inject(&mut self, class: TransferClass) {
        let Some(injector) = &mut self.injector else { return };
        match injector.draw(class) {
            None => {}
            Some(Injection::Stall(cycles)) => {
                self.injected_stall_cycles += cycles;
                self.clock.advance(cycles);
            }
            Some(Injection::Fault(kind)) => {
                let event = FaultEvent { cu: injector.cu(), kind, at_cycle: self.clock.cycles() };
                if self.pending_fault.is_none() {
                    self.pending_fault = Some(event);
                }
            }
        }
    }

    /// Advances the clock for a DRAM transfer of `words` words costing
    /// `base_cycles` uncontended, adding any stall the shared arbiter imposes
    /// — the contention share always, the banked share (conflicts and
    /// read↔write turnarounds) only when the arbiter charges banked latency.
    fn advance_dram(&mut self, dir: BurstDirection, base_cycles: u64, words: u64) {
        self.dram_busy_cycles += base_cycles;
        let mut stall = 0;
        if let Some(handle) = &self.arbiter {
            let breakdown = handle.record_refill_directed(dir, None, words, base_cycles);
            self.contention_cycles += breakdown.contention;
            stall = breakdown.contention;
            if handle.charges_banks() {
                self.bank_conflict_cycles += breakdown.conflict;
                self.turnaround_cycles += breakdown.turnaround;
                stall += breakdown.banked_stall();
            }
        }
        self.clock.advance(base_cycles + stall);
        self.inject(TransferClass::Dram);
    }

    /// Whether the attached arbiter charges banked DRAM latency (bank
    /// conflicts and read↔write turnarounds) to this device's clock.
    pub fn charges_banked_dram(&self) -> bool {
        self.arbiter.as_ref().is_some_and(ArbiterHandle::charges_banks)
    }

    /// Bank geometry `(num_banks, stripe_words)` of the attached arbiter's
    /// interleaving model, when one exists.
    pub fn bank_geometry(&self) -> Option<(usize, u64)> {
        self.arbiter.as_ref().and_then(|handle| handle.arbiter().bank_geometry())
    }

    /// Charges the *banked* stall of fetching a placed adjacency row of
    /// `words` words at word address `row_addr`: the burst is routed through
    /// the arbiter's bank map and only its conflict + turnaround share
    /// advances the clock (the base fetch latency is already folded into the
    /// expansion pipeline's initiation interval, like every other uncached
    /// graph access).
    ///
    /// A complete no-op — no clock, no bank state, no counters — unless the
    /// arbiter charges banked latency, so runs with charging disabled stay
    /// bit-identical to the pre-placement timing model.
    pub fn charge_placed_row_fetch(&mut self, row_addr: u64, words: u64) {
        let Some(handle) = &self.arbiter else { return };
        if !handle.charges_banks() || words == 0 {
            return;
        }
        let breakdown =
            handle.record_refill_directed(BurstDirection::Read, Some(row_addr), words, 0);
        self.bank_conflict_cycles += breakdown.conflict;
        self.turnaround_cycles += breakdown.turnaround;
        self.clock.advance(breakdown.banked_stall());
    }

    /// A device with the paper's Alveo U200 profile.
    pub fn alveo_u200() -> Self {
        Self::new(DeviceConfig::alveo_u200())
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Mutable access to the BRAM allocator.
    pub fn bram_mut(&mut self) -> &mut Bram {
        &mut self.bram
    }

    /// Read-only access to the BRAM allocator.
    pub fn bram(&self) -> &Bram {
        &self.bram
    }

    /// Resets clock, counters and PCIe time (BRAM allocations are kept, since
    /// the graph cache persists across queries on the same graph).
    pub fn reset_query_state(&mut self) {
        self.clock.reset();
        self.counters = MemoryCounters::new();
        self.pcie_seconds = 0.0;
        self.dram_busy_cycles = 0;
        self.contention_cycles = 0;
        self.bank_conflict_cycles = 0;
        self.turnaround_cycles = 0;
        self.pending_fault = None;
        self.injected_stall_cycles = 0;
    }

    /// Fully resets the device, including BRAM allocations.
    pub fn reset_all(&mut self) {
        self.reset_query_state();
        self.bram.release_all();
    }

    // ---- memory access charging -------------------------------------------------

    /// Charges a read of `words` consecutive 32-bit words from `kind`.
    pub fn charge_read(&mut self, kind: MemoryKind, words: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_reads += 1;
                self.clock.advance(self.bram.read_cost(words));
            }
            MemoryKind::Dram => {
                self.counters.dram_reads += 1;
                self.counters.dram_words_read += words;
                let base = self.dram.read_cost(words);
                self.advance_dram(BurstDirection::Read, base, words);
            }
        }
    }

    /// Charges a write of `words` consecutive 32-bit words to `kind`.
    pub fn charge_write(&mut self, kind: MemoryKind, words: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_writes += 1;
                self.clock.advance(self.bram.write_cost(words));
            }
            MemoryKind::Dram => {
                self.counters.dram_writes += 1;
                self.counters.dram_words_written += words;
                let base = self.dram.write_cost(words);
                self.advance_dram(BurstDirection::Write, base, words);
            }
        }
    }

    /// Charges `accesses` scattered single-word reads from `kind` (the
    /// random-access pattern of uncached graph lookups).
    pub fn charge_random_reads(&mut self, kind: MemoryKind, accesses: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_reads += accesses;
                self.clock.advance(accesses * self.bram.read_cost(1));
            }
            MemoryKind::Dram => {
                self.counters.dram_reads += accesses;
                self.counters.dram_words_read += accesses;
                let base = self.dram.random_read_cost(accesses);
                self.advance_dram(BurstDirection::Read, base, accesses);
            }
        }
    }

    /// Records `accesses` cache hits without advancing the clock.
    ///
    /// Used by the engine when the BRAM reads are fully overlapped with the
    /// expansion pipeline (their latency is part of the pipeline depth, not a
    /// serial cost); only the traffic statistics need updating.
    pub fn note_cache_hits(&mut self, accesses: u64) {
        self.counters.cache_hits += accesses;
        self.counters.bram_reads += accesses;
    }

    /// Records `accesses` cache misses totalling `words` DRAM words without
    /// advancing the clock. The timing impact of the misses is modelled by the
    /// caller as a pipeline initiation-interval stall (see `pefp-core`).
    pub fn note_cache_misses(&mut self, accesses: u64, words: u64) {
        self.counters.cache_misses += accesses;
        self.counters.dram_reads += accesses;
        self.counters.dram_words_read += words;
    }

    /// Records a cache hit (data served from BRAM) and charges the BRAM read.
    pub fn charge_cache_hit(&mut self, words: u64) {
        self.counters.cache_hits += 1;
        self.counters.bram_reads += 1;
        self.clock.advance(self.bram.read_cost(words));
    }

    /// Records a cache miss (data fetched from DRAM) and charges the DRAM read.
    pub fn charge_cache_miss(&mut self, words: u64) {
        self.counters.cache_misses += 1;
        self.counters.dram_reads += 1;
        self.counters.dram_words_read += words;
        let base = self.dram.read_cost(words);
        self.advance_dram(BurstDirection::Read, base, words);
    }

    /// Records a buffer-area flush of `words` to DRAM.
    pub fn charge_buffer_flush(&mut self, words: u64) {
        self.counters.buffer_flushes += 1;
        self.counters.dram_writes += 1;
        self.counters.dram_words_written += words;
        let base = self.dram.write_cost(words);
        self.advance_dram(BurstDirection::Write, base, words);
    }

    /// Records fetching a batch of `words` back from DRAM into BRAM.
    pub fn charge_dram_batch_fetch(&mut self, words: u64) {
        self.counters.dram_batch_fetches += 1;
        self.counters.dram_reads += 1;
        self.counters.dram_words_read += words;
        let base = self.dram.read_cost(words);
        self.advance_dram(BurstDirection::Read, base, words);
    }

    // ---- compute charging -------------------------------------------------------

    /// Charges a fully pipelined loop of `iterations` iterations with the
    /// given pipeline depth (II = 1).
    pub fn charge_pipelined_loop(&mut self, iterations: u64, depth: u64) {
        self.clock.advance(pipeline_cycles(iterations, depth, 1));
    }

    /// Charges a loop that could not be pipelined (II = depth).
    pub fn charge_unpipelined_loop(&mut self, iterations: u64, depth: u64) {
        self.clock.advance(pipeline_cycles(iterations, depth, depth));
    }

    /// Charges a dataflow region whose stages execute concurrently.
    pub fn charge_dataflow(&mut self, stage_cycles: &[u64]) {
        self.clock.advance(dataflow_cycles(stage_cycles));
    }

    /// Charges the same stages executed sequentially (no dataflow).
    pub fn charge_sequential(&mut self, stage_cycles: &[u64]) {
        self.clock.advance(sequential_cycles(stage_cycles));
    }

    /// Charges a raw cycle count (setup logic, FSM transitions, …).
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    // ---- PCIe -------------------------------------------------------------------

    /// Charges a host→device or device→host DMA transfer of `bytes`.
    pub fn charge_pcie_transfer(&mut self, bytes: usize) {
        self.pcie_seconds += self.pcie.transfer_seconds(bytes);
        self.inject(TransferClass::Pcie);
    }

    // ---- reporting --------------------------------------------------------------

    /// Kernel cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.clock.cycles()
    }

    /// Number of parallel verification lanes configured for this device.
    pub fn verification_lanes(&self) -> usize {
        self.config.verification_lanes
    }

    /// Produces the per-query report.
    pub fn report(&self) -> DeviceReport {
        let kernel_millis = self.config.cycles_to_millis(self.clock.cycles());
        let pcie_millis = self.pcie_seconds * 1.0e3;
        DeviceReport {
            cycles: self.clock.cycles(),
            kernel_millis,
            pcie_millis,
            total_millis: kernel_millis + pcie_millis,
            counters: self.counters,
            bram_used: self.bram.used(),
            bram_capacity: self.bram.capacity(),
            dram_cycles: self.dram_busy_cycles,
            contention_cycles: self.contention_cycles,
            bank_conflict_cycles: self.bank_conflict_cycles,
            turnaround_cycles: self.turnaround_cycles,
            fault: self.pending_fault,
            injected_stall_cycles: self.injected_stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_access_is_cheaper_than_dram_access() {
        let mut d = Device::alveo_u200();
        d.charge_read(MemoryKind::Bram, 1);
        let bram_cycles = d.cycles();
        d.reset_query_state();
        d.charge_read(MemoryKind::Dram, 1);
        let dram_cycles = d.cycles();
        assert!(dram_cycles > bram_cycles * 5, "{dram_cycles} vs {bram_cycles}");
    }

    #[test]
    fn counters_track_traffic() {
        let mut d = Device::alveo_u200();
        d.charge_write(MemoryKind::Dram, 64);
        d.charge_buffer_flush(128);
        d.charge_dram_batch_fetch(128);
        d.charge_cache_hit(1);
        d.charge_cache_miss(1);
        let r = d.report();
        assert_eq!(r.counters.dram_writes, 2);
        assert_eq!(r.counters.dram_words_written, 192);
        assert_eq!(r.counters.buffer_flushes, 1);
        assert_eq!(r.counters.dram_batch_fetches, 1);
        assert_eq!(r.counters.cache_hits, 1);
        assert_eq!(r.counters.cache_misses, 1);
    }

    #[test]
    fn dataflow_charge_is_cheaper_than_sequential() {
        let stages = [100u64, 80, 60];
        let mut a = Device::alveo_u200();
        a.charge_dataflow(&stages);
        let mut b = Device::alveo_u200();
        b.charge_sequential(&stages);
        assert!(a.cycles() < b.cycles());
        assert_eq!(a.cycles(), 100);
        assert_eq!(b.cycles(), 240);
    }

    #[test]
    fn report_converts_cycles_to_time() {
        let mut d = Device::alveo_u200();
        d.charge_cycles(300_000); // 1 ms at 300 MHz
        d.charge_pcie_transfer(77_000_000); // ~1 ms at 77 GB/s
        let r = d.report();
        assert!((r.kernel_millis - 1.0).abs() < 1e-9);
        assert!((r.pcie_millis - 1.01).abs() < 0.1);
        assert!((r.total_millis - (r.kernel_millis + r.pcie_millis)).abs() < 1e-12);
    }

    #[test]
    fn reset_query_state_keeps_bram_allocations() {
        let mut d = Device::alveo_u200();
        assert!(d.bram_mut().try_allocate("graph_cache", 1024));
        d.charge_cycles(10);
        d.reset_query_state();
        assert_eq!(d.cycles(), 0);
        assert_eq!(d.bram().used(), 1024);
        d.reset_all();
        assert_eq!(d.bram().used(), 0);
    }

    #[test]
    fn random_reads_cost_more_than_a_burst() {
        let mut burst = Device::alveo_u200();
        burst.charge_read(MemoryKind::Dram, 256);
        let mut random = Device::alveo_u200();
        random.charge_random_reads(MemoryKind::Dram, 256);
        assert!(random.cycles() > 4 * burst.cycles());
    }

    #[test]
    #[should_panic(expected = "invalid device config")]
    fn invalid_config_is_rejected() {
        let mut cfg = DeviceConfig::alveo_u200();
        cfg.clock_mhz = 0.0;
        Device::new(cfg);
    }

    #[test]
    fn report_splits_dram_cycles_out_of_the_total() {
        let mut d = Device::alveo_u200();
        d.charge_pipelined_loop(1000, 3); // compute only
        let compute = d.cycles();
        d.charge_read(MemoryKind::Dram, 128);
        d.charge_buffer_flush(64);
        let r = d.report();
        assert_eq!(r.contention_cycles, 0, "standalone devices never stall");
        assert_eq!(r.dram_cycles, r.cycles - compute, "DRAM share = total - compute");
        assert!(r.dram_cycles > 0);
    }

    #[test]
    fn attached_arbiter_stalls_dram_transfers_under_contention() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use std::sync::Arc;

        let arbiter = Arc::new(DramArbiter::new(0.5));
        let mut contended = Device::alveo_u200();
        contended.attach_arbiter(ArbiterHandle::new(Arc::clone(&arbiter), 0));
        let mut free = Device::alveo_u200();

        // Four active CUs at share 0.5: factor 2 on every DRAM transfer.
        let _guards: Vec<_> = (0..4).map(|_| arbiter.activate()).collect();
        contended.charge_read(MemoryKind::Dram, 256);
        free.charge_read(MemoryKind::Dram, 256);
        let (c, f) = (contended.report(), free.report());
        assert_eq!(c.dram_cycles, f.dram_cycles, "base DRAM cost is unchanged");
        assert_eq!(c.contention_cycles, c.dram_cycles, "factor 2 doubles the transfer");
        assert_eq!(c.cycles, 2 * f.cycles);
        // BRAM and compute are private to the CU: no stall.
        contended.reset_query_state();
        contended.charge_read(MemoryKind::Bram, 4);
        contended.charge_pipelined_loop(100, 3);
        assert_eq!(contended.report().contention_cycles, 0);
    }

    #[test]
    fn scripted_dram_fault_latches_on_the_device() {
        use crate::fault::{FaultKind, FaultPlan, ScriptedFault};
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 1, kind: FaultKind::DramCorruption });
        let mut d = Device::alveo_u200();
        d.attach_fault_injector(plan.injector_for(0));
        d.charge_read(MemoryKind::Dram, 64);
        assert!(d.pending_fault().is_none(), "first transfer passes its checksum");
        d.charge_read(MemoryKind::Dram, 64);
        let fault = d.pending_fault().expect("second transfer fails its checksum");
        assert_eq!(fault.kind, FaultKind::DramCorruption);
        assert_eq!(fault.cu, 0);
        assert_eq!(d.report().fault, Some(fault), "the report carries the latched fault");
        // The latch survives further (also faulty or clean) traffic…
        d.charge_write(MemoryKind::Dram, 64);
        assert_eq!(d.pending_fault().unwrap().kind, FaultKind::DramCorruption);
        // …and clears with the query state.
        d.reset_query_state();
        assert!(d.pending_fault().is_none());
    }

    #[test]
    fn injected_stall_burns_cycles_without_raising_a_fault() {
        use crate::fault::{FaultPlan, FaultRates};
        let rates = FaultRates { cu_stall: 1.0, stall_cycles: 5_000, ..FaultRates::NONE };
        let plan = FaultPlan::seeded(3, rates, 1);
        let mut stalled = Device::alveo_u200();
        stalled.attach_fault_injector(plan.injector_for(0));
        let mut clean = Device::alveo_u200();
        stalled.charge_read(MemoryKind::Dram, 64);
        clean.charge_read(MemoryKind::Dram, 64);
        assert!(stalled.pending_fault().is_none(), "stalls are latency, not errors");
        assert_eq!(stalled.cycles(), clean.cycles() + 5_000);
        assert_eq!(stalled.report().injected_stall_cycles, 5_000);
    }

    #[test]
    fn pcie_fault_is_detected_on_the_dma() {
        use crate::fault::{FaultKind, FaultPlan, ScriptedFault};
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::PcieError });
        let mut d = Device::alveo_u200();
        d.attach_fault_injector(plan.injector_for(0));
        d.charge_pcie_transfer(4096);
        assert_eq!(d.pending_fault().unwrap().kind, FaultKind::PcieError);
    }

    #[test]
    fn raise_fault_records_the_watchdog_verdict() {
        use crate::fault::FaultKind;
        let mut d = Device::alveo_u200();
        d.charge_cycles(777);
        let event = d.raise_fault(FaultKind::CuHang);
        assert_eq!(event.kind, FaultKind::CuHang);
        assert_eq!(event.at_cycle, 777);
        assert_eq!(d.pending_fault(), Some(event));
        // An already-latched device keeps its first fault.
        let second = d.raise_fault(FaultKind::CuCrash);
        assert_eq!(second, event);
    }

    #[test]
    fn uncharged_banked_arbiter_never_touches_the_clock() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use crate::banks::{DramBanks, Interleaving};
        use std::sync::Arc;

        // Tail streams never conflict (they are prefetchable), but the
        // read/write alternation forces turnarounds — and with charging off
        // the metered cycles must stay observational.
        let banks = DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank);
        let arbiter = Arc::new(DramArbiter::with_banks(0.5, banks));
        let mut banked = Device::alveo_u200();
        banked.attach_arbiter(ArbiterHandle::new(Arc::clone(&arbiter), 0));
        let mut plain = Device::alveo_u200();
        for d in [&mut banked, &mut plain] {
            d.charge_read(MemoryKind::Dram, 64);
            d.charge_write(MemoryKind::Dram, 64);
            d.charge_read(MemoryKind::Dram, 64);
        }
        assert_eq!(arbiter.stats().bank_conflict_cycles, 0, "streams never conflict");
        assert!(arbiter.stats().turnaround_cycles > 0, "turnarounds are metered");
        assert_eq!(banked.cycles(), plain.cycles(), "…but never charged");
        let report = banked.report();
        assert_eq!(report.bank_conflict_cycles, 0);
        assert_eq!(report.turnaround_cycles, 0);
        // Placed row fetches are a complete no-op with charging off: neither
        // the clock nor the bank cursor moves.
        let accesses_before = arbiter.bank_report().unwrap().accesses;
        banked.charge_placed_row_fetch(0, 16);
        assert_eq!(banked.cycles(), plain.cycles());
        assert_eq!(arbiter.bank_report().unwrap().accesses, accesses_before);
    }

    #[test]
    fn charged_banked_arbiter_stalls_the_clock_by_the_banked_share() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use crate::banks::{DramBanks, Interleaving};
        use std::sync::Arc;

        let make = |charged: bool| {
            let banks =
                DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank).with_turnaround_penalty(4);
            let arbiter = if charged {
                Arc::new(DramArbiter::with_banks_charged(0.5, banks))
            } else {
                Arc::new(DramArbiter::with_banks(0.5, banks))
            };
            let mut device = Device::alveo_u200();
            device.attach_arbiter(ArbiterHandle::new(arbiter, 0));
            device
        };
        let mut charged = make(true);
        let mut free = make(false);
        for d in [&mut charged, &mut free] {
            d.charge_read(MemoryKind::Dram, 64);
            d.charge_write(MemoryKind::Dram, 64);
            d.charge_read(MemoryKind::Dram, 64);
        }
        let (c, f) = (charged.report(), free.report());
        // Tail streams never conflict, but the read→write and write→read
        // flips cost 2 turnarounds × 4 cycles.
        assert_eq!(c.bank_conflict_cycles, 0);
        assert_eq!(c.turnaround_cycles, 8);
        assert_eq!(c.cycles, f.cycles + 8, "the banked share is charged on top");
        assert_eq!(c.dram_cycles, f.dram_cycles, "base DRAM cost is unchanged");
        // Placed row fetches charge only their banked stall: the first one
        // opens row 0 on bank 0 for free, the second lands on bank 0
        // (SingleBank) with a different row open there — one conflict
        // latency, no base cost.
        let before = charged.cycles();
        charged.charge_placed_row_fetch(0, 16);
        assert_eq!(charged.cycles(), before, "opening a fresh row is free");
        charged.charge_placed_row_fetch(64, 16);
        assert_eq!(charged.cycles(), before + 8, "one conflict latency, no base cost");
        assert_eq!(charged.report().bank_conflict_cycles, 8);
    }

    #[test]
    fn charged_clock_is_the_uncharged_clock_plus_the_metered_stall() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use crate::banks::{DramBanks, Interleaving};
        use std::sync::Arc;

        // Property: over any op sequence the charged clock equals the
        // uncharged clock plus exactly the conflict + turnaround cycles the
        // charged run metered — charging is pure additive stall, so zero
        // conflicts and zero turnarounds imply bit-identical clocks.
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let make = |charged: bool| {
            let banks =
                DramBanks::new(4, 8, 8, 8, Interleaving::SingleBank).with_turnaround_penalty(4);
            let arbiter = if charged {
                Arc::new(DramArbiter::with_banks_charged(0.5, banks))
            } else {
                Arc::new(DramArbiter::with_banks(0.5, banks))
            };
            let mut device = Device::alveo_u200();
            device.attach_arbiter(ArbiterHandle::new(arbiter, 0));
            device
        };
        for seed in [1u64, 7, 42, 1234] {
            let mut charged = make(true);
            let mut free = make(false);
            for d in [&mut charged, &mut free] {
                let mut state = seed; // identical op stream on both devices
                for _ in 0..200 {
                    let roll = splitmix64(&mut state);
                    let words = 1 + (roll >> 8) % 64;
                    match roll % 3 {
                        0 => d.charge_read(MemoryKind::Dram, words),
                        1 => d.charge_write(MemoryKind::Dram, words),
                        _ => d.charge_placed_row_fetch((roll >> 16) % 4096, words),
                    }
                }
            }
            let (c, f) = (charged.report(), free.report());
            let stall = c.bank_conflict_cycles + c.turnaround_cycles;
            assert!(stall > 0, "seed {seed}: the random stream must exercise the bank model");
            assert_eq!(
                c.cycles,
                f.cycles + stall,
                "seed {seed}: every charged cycle must be metered, and vice versa"
            );
            assert_eq!(f.bank_conflict_cycles, 0, "uncharged stays observational");
            assert_eq!(f.turnaround_cycles, 0, "uncharged stays observational");
        }
    }

    #[test]
    fn conflict_free_round_robin_reads_charge_nothing() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use crate::banks::{DramBanks, Interleaving};
        use std::sync::Arc;

        // The equality side of the property: a reads-only workload whose
        // placed fetches keep every bank's row open (one hot row per bank,
        // revisited) hits zero conflicts and zero turnarounds under
        // round-robin interleaving — with nothing metered, charging on is
        // bit-identical to charging off.
        let make = |charged: bool| {
            let banks = DramBanks::new(4, 8, 8, 8, Interleaving::RoundRobin);
            let arbiter = if charged {
                Arc::new(DramArbiter::with_banks_charged(0.5, banks))
            } else {
                Arc::new(DramArbiter::with_banks(0.5, banks))
            };
            let mut device = Device::alveo_u200();
            device.attach_arbiter(ArbiterHandle::new(Arc::clone(&arbiter), 0));
            (device, arbiter)
        };
        let (mut charged, arbiter) = make(true);
        let (mut free, _) = make(false);
        for d in [&mut charged, &mut free] {
            for _ in 0..8 {
                d.charge_read(MemoryKind::Dram, 64);
                for bank in 0..4u64 {
                    // Round-robin places stripe `bank` on bank `bank`; the
                    // same four rows stay open across every round.
                    d.charge_placed_row_fetch(bank * 8, 8);
                }
            }
        }
        assert_eq!(arbiter.stats().bank_conflict_cycles, 0, "hot rows never conflict");
        assert_eq!(arbiter.stats().turnaround_cycles, 0, "reads-only: no direction flips");
        assert_eq!(charged.cycles(), free.cycles(), "nothing metered, nothing charged");
        assert_eq!(charged.report().bank_conflict_cycles, 0);
        assert_eq!(charged.report().turnaround_cycles, 0);
    }

    #[test]
    fn unpipelined_loop_costs_more_than_pipelined() {
        let mut a = Device::alveo_u200();
        a.charge_pipelined_loop(1000, 3);
        let mut b = Device::alveo_u200();
        b.charge_unpipelined_loop(1000, 3);
        assert!(b.cycles() > 2 * a.cycles());
    }
}
