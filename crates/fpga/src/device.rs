//! The assembled device: BRAM + DRAM + PCIe + clock + counters.
//!
//! `pefp-core` talks to the simulated card exclusively through [`Device`]:
//! it allocates BRAM regions, charges reads/writes against the right memory,
//! charges pipelined loops and dataflow regions, and finally asks for a
//! [`DeviceReport`] containing the simulated time and traffic statistics for
//! one query.

use crate::arbiter::ArbiterHandle;
use crate::bram::Bram;
use crate::clock::CycleClock;
use crate::config::{DeviceConfig, MemoryKind};
use crate::counters::MemoryCounters;
use crate::dram::Dram;
use crate::pcie::Pcie;
use crate::pipeline::{dataflow_cycles, pipeline_cycles, sequential_cycles};
use serde::{Deserialize, Serialize};

/// Simulated FPGA card.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    bram: Bram,
    dram: Dram,
    pcie: Pcie,
    clock: CycleClock,
    counters: MemoryCounters,
    /// Simulated seconds spent in PCIe transfers (kept separate from kernel
    /// cycles because DMA overlaps with neither the host nor the kernel in
    /// the paper's measurements).
    pcie_seconds: f64,
    /// Handle to the card's shared DRAM arbiter when this device is one CU of
    /// a [`crate::multi_cu::CuCluster`]; `None` for a standalone device.
    arbiter: Option<ArbiterHandle>,
    /// Uncontended cycles spent on DRAM transfers (the shared-bus share of
    /// the clock, before contention stalls).
    dram_busy_cycles: u64,
    /// Extra stall cycles injected by the shared-DRAM arbiter.
    contention_cycles: u64,
}

/// Summary of one query's device activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Kernel cycles consumed.
    pub cycles: u64,
    /// Kernel time in simulated milliseconds.
    pub kernel_millis: f64,
    /// PCIe transfer time in simulated milliseconds.
    pub pcie_millis: f64,
    /// Total simulated device time (kernel + PCIe) in milliseconds.
    pub total_millis: f64,
    /// Memory traffic counters.
    pub counters: MemoryCounters,
    /// Bytes of BRAM currently allocated.
    pub bram_used: usize,
    /// BRAM capacity in bytes.
    pub bram_capacity: usize,
    /// Uncontended cycles spent on DRAM transfers — the share of `cycles` a
    /// saturated multi-CU memory system can slow down.
    pub dram_cycles: u64,
    /// Stall cycles injected by a shared-DRAM arbiter (0 for a standalone
    /// device; included in `cycles`).
    pub contention_cycles: u64,
}

impl Device {
    /// Instantiates a device from a configuration profile.
    pub fn new(config: DeviceConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid device config: {problems:?}");
        let bram =
            Bram::new(config.bram_bytes, config.bram_read_latency, config.bram_write_latency);
        let dram = Dram::new(
            config.dram_bytes,
            config.dram_read_latency,
            config.dram_write_latency,
            config.dram_burst_words_per_cycle,
        );
        let pcie = Pcie::new(config.pcie_gbps, config.pcie_setup_us);
        Device {
            config,
            bram,
            dram,
            pcie,
            clock: CycleClock::new(),
            counters: MemoryCounters::new(),
            pcie_seconds: 0.0,
            arbiter: None,
            dram_busy_cycles: 0,
            contention_cycles: 0,
        }
    }

    /// Wires this device to a shared DRAM arbiter: every DRAM transfer is
    /// metered and pays the contention stalls the arbiter dictates. Used by
    /// [`crate::multi_cu::CuCluster`] when the device is one CU of a card.
    pub fn attach_arbiter(&mut self, handle: ArbiterHandle) {
        self.arbiter = Some(handle);
    }

    /// The shared-arbiter handle, when this device is part of a cluster.
    pub fn arbiter(&self) -> Option<&ArbiterHandle> {
        self.arbiter.as_ref()
    }

    /// Advances the clock for a DRAM transfer of `words` words costing
    /// `base_cycles` uncontended, adding any stall the shared arbiter imposes.
    fn advance_dram(&mut self, base_cycles: u64, words: u64) {
        self.dram_busy_cycles += base_cycles;
        let stall = match &self.arbiter {
            Some(handle) => handle.record_refill(words, base_cycles),
            None => 0,
        };
        self.contention_cycles += stall;
        self.clock.advance(base_cycles + stall);
    }

    /// A device with the paper's Alveo U200 profile.
    pub fn alveo_u200() -> Self {
        Self::new(DeviceConfig::alveo_u200())
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Mutable access to the BRAM allocator.
    pub fn bram_mut(&mut self) -> &mut Bram {
        &mut self.bram
    }

    /// Read-only access to the BRAM allocator.
    pub fn bram(&self) -> &Bram {
        &self.bram
    }

    /// Resets clock, counters and PCIe time (BRAM allocations are kept, since
    /// the graph cache persists across queries on the same graph).
    pub fn reset_query_state(&mut self) {
        self.clock.reset();
        self.counters = MemoryCounters::new();
        self.pcie_seconds = 0.0;
        self.dram_busy_cycles = 0;
        self.contention_cycles = 0;
    }

    /// Fully resets the device, including BRAM allocations.
    pub fn reset_all(&mut self) {
        self.reset_query_state();
        self.bram.release_all();
    }

    // ---- memory access charging -------------------------------------------------

    /// Charges a read of `words` consecutive 32-bit words from `kind`.
    pub fn charge_read(&mut self, kind: MemoryKind, words: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_reads += 1;
                self.clock.advance(self.bram.read_cost(words));
            }
            MemoryKind::Dram => {
                self.counters.dram_reads += 1;
                self.counters.dram_words_read += words;
                let base = self.dram.read_cost(words);
                self.advance_dram(base, words);
            }
        }
    }

    /// Charges a write of `words` consecutive 32-bit words to `kind`.
    pub fn charge_write(&mut self, kind: MemoryKind, words: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_writes += 1;
                self.clock.advance(self.bram.write_cost(words));
            }
            MemoryKind::Dram => {
                self.counters.dram_writes += 1;
                self.counters.dram_words_written += words;
                let base = self.dram.write_cost(words);
                self.advance_dram(base, words);
            }
        }
    }

    /// Charges `accesses` scattered single-word reads from `kind` (the
    /// random-access pattern of uncached graph lookups).
    pub fn charge_random_reads(&mut self, kind: MemoryKind, accesses: u64) {
        match kind {
            MemoryKind::Bram => {
                self.counters.bram_reads += accesses;
                self.clock.advance(accesses * self.bram.read_cost(1));
            }
            MemoryKind::Dram => {
                self.counters.dram_reads += accesses;
                self.counters.dram_words_read += accesses;
                let base = self.dram.random_read_cost(accesses);
                self.advance_dram(base, accesses);
            }
        }
    }

    /// Records `accesses` cache hits without advancing the clock.
    ///
    /// Used by the engine when the BRAM reads are fully overlapped with the
    /// expansion pipeline (their latency is part of the pipeline depth, not a
    /// serial cost); only the traffic statistics need updating.
    pub fn note_cache_hits(&mut self, accesses: u64) {
        self.counters.cache_hits += accesses;
        self.counters.bram_reads += accesses;
    }

    /// Records `accesses` cache misses totalling `words` DRAM words without
    /// advancing the clock. The timing impact of the misses is modelled by the
    /// caller as a pipeline initiation-interval stall (see `pefp-core`).
    pub fn note_cache_misses(&mut self, accesses: u64, words: u64) {
        self.counters.cache_misses += accesses;
        self.counters.dram_reads += accesses;
        self.counters.dram_words_read += words;
    }

    /// Records a cache hit (data served from BRAM) and charges the BRAM read.
    pub fn charge_cache_hit(&mut self, words: u64) {
        self.counters.cache_hits += 1;
        self.counters.bram_reads += 1;
        self.clock.advance(self.bram.read_cost(words));
    }

    /// Records a cache miss (data fetched from DRAM) and charges the DRAM read.
    pub fn charge_cache_miss(&mut self, words: u64) {
        self.counters.cache_misses += 1;
        self.counters.dram_reads += 1;
        self.counters.dram_words_read += words;
        let base = self.dram.read_cost(words);
        self.advance_dram(base, words);
    }

    /// Records a buffer-area flush of `words` to DRAM.
    pub fn charge_buffer_flush(&mut self, words: u64) {
        self.counters.buffer_flushes += 1;
        self.counters.dram_writes += 1;
        self.counters.dram_words_written += words;
        let base = self.dram.write_cost(words);
        self.advance_dram(base, words);
    }

    /// Records fetching a batch of `words` back from DRAM into BRAM.
    pub fn charge_dram_batch_fetch(&mut self, words: u64) {
        self.counters.dram_batch_fetches += 1;
        self.counters.dram_reads += 1;
        self.counters.dram_words_read += words;
        let base = self.dram.read_cost(words);
        self.advance_dram(base, words);
    }

    // ---- compute charging -------------------------------------------------------

    /// Charges a fully pipelined loop of `iterations` iterations with the
    /// given pipeline depth (II = 1).
    pub fn charge_pipelined_loop(&mut self, iterations: u64, depth: u64) {
        self.clock.advance(pipeline_cycles(iterations, depth, 1));
    }

    /// Charges a loop that could not be pipelined (II = depth).
    pub fn charge_unpipelined_loop(&mut self, iterations: u64, depth: u64) {
        self.clock.advance(pipeline_cycles(iterations, depth, depth));
    }

    /// Charges a dataflow region whose stages execute concurrently.
    pub fn charge_dataflow(&mut self, stage_cycles: &[u64]) {
        self.clock.advance(dataflow_cycles(stage_cycles));
    }

    /// Charges the same stages executed sequentially (no dataflow).
    pub fn charge_sequential(&mut self, stage_cycles: &[u64]) {
        self.clock.advance(sequential_cycles(stage_cycles));
    }

    /// Charges a raw cycle count (setup logic, FSM transitions, …).
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    // ---- PCIe -------------------------------------------------------------------

    /// Charges a host→device or device→host DMA transfer of `bytes`.
    pub fn charge_pcie_transfer(&mut self, bytes: usize) {
        self.pcie_seconds += self.pcie.transfer_seconds(bytes);
    }

    // ---- reporting --------------------------------------------------------------

    /// Kernel cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.clock.cycles()
    }

    /// Number of parallel verification lanes configured for this device.
    pub fn verification_lanes(&self) -> usize {
        self.config.verification_lanes
    }

    /// Produces the per-query report.
    pub fn report(&self) -> DeviceReport {
        let kernel_millis = self.config.cycles_to_millis(self.clock.cycles());
        let pcie_millis = self.pcie_seconds * 1.0e3;
        DeviceReport {
            cycles: self.clock.cycles(),
            kernel_millis,
            pcie_millis,
            total_millis: kernel_millis + pcie_millis,
            counters: self.counters,
            bram_used: self.bram.used(),
            bram_capacity: self.bram.capacity(),
            dram_cycles: self.dram_busy_cycles,
            contention_cycles: self.contention_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_access_is_cheaper_than_dram_access() {
        let mut d = Device::alveo_u200();
        d.charge_read(MemoryKind::Bram, 1);
        let bram_cycles = d.cycles();
        d.reset_query_state();
        d.charge_read(MemoryKind::Dram, 1);
        let dram_cycles = d.cycles();
        assert!(dram_cycles > bram_cycles * 5, "{dram_cycles} vs {bram_cycles}");
    }

    #[test]
    fn counters_track_traffic() {
        let mut d = Device::alveo_u200();
        d.charge_write(MemoryKind::Dram, 64);
        d.charge_buffer_flush(128);
        d.charge_dram_batch_fetch(128);
        d.charge_cache_hit(1);
        d.charge_cache_miss(1);
        let r = d.report();
        assert_eq!(r.counters.dram_writes, 2);
        assert_eq!(r.counters.dram_words_written, 192);
        assert_eq!(r.counters.buffer_flushes, 1);
        assert_eq!(r.counters.dram_batch_fetches, 1);
        assert_eq!(r.counters.cache_hits, 1);
        assert_eq!(r.counters.cache_misses, 1);
    }

    #[test]
    fn dataflow_charge_is_cheaper_than_sequential() {
        let stages = [100u64, 80, 60];
        let mut a = Device::alveo_u200();
        a.charge_dataflow(&stages);
        let mut b = Device::alveo_u200();
        b.charge_sequential(&stages);
        assert!(a.cycles() < b.cycles());
        assert_eq!(a.cycles(), 100);
        assert_eq!(b.cycles(), 240);
    }

    #[test]
    fn report_converts_cycles_to_time() {
        let mut d = Device::alveo_u200();
        d.charge_cycles(300_000); // 1 ms at 300 MHz
        d.charge_pcie_transfer(77_000_000); // ~1 ms at 77 GB/s
        let r = d.report();
        assert!((r.kernel_millis - 1.0).abs() < 1e-9);
        assert!((r.pcie_millis - 1.01).abs() < 0.1);
        assert!((r.total_millis - (r.kernel_millis + r.pcie_millis)).abs() < 1e-12);
    }

    #[test]
    fn reset_query_state_keeps_bram_allocations() {
        let mut d = Device::alveo_u200();
        assert!(d.bram_mut().try_allocate("graph_cache", 1024));
        d.charge_cycles(10);
        d.reset_query_state();
        assert_eq!(d.cycles(), 0);
        assert_eq!(d.bram().used(), 1024);
        d.reset_all();
        assert_eq!(d.bram().used(), 0);
    }

    #[test]
    fn random_reads_cost_more_than_a_burst() {
        let mut burst = Device::alveo_u200();
        burst.charge_read(MemoryKind::Dram, 256);
        let mut random = Device::alveo_u200();
        random.charge_random_reads(MemoryKind::Dram, 256);
        assert!(random.cycles() > 4 * burst.cycles());
    }

    #[test]
    #[should_panic(expected = "invalid device config")]
    fn invalid_config_is_rejected() {
        let mut cfg = DeviceConfig::alveo_u200();
        cfg.clock_mhz = 0.0;
        Device::new(cfg);
    }

    #[test]
    fn report_splits_dram_cycles_out_of_the_total() {
        let mut d = Device::alveo_u200();
        d.charge_pipelined_loop(1000, 3); // compute only
        let compute = d.cycles();
        d.charge_read(MemoryKind::Dram, 128);
        d.charge_buffer_flush(64);
        let r = d.report();
        assert_eq!(r.contention_cycles, 0, "standalone devices never stall");
        assert_eq!(r.dram_cycles, r.cycles - compute, "DRAM share = total - compute");
        assert!(r.dram_cycles > 0);
    }

    #[test]
    fn attached_arbiter_stalls_dram_transfers_under_contention() {
        use crate::arbiter::{ArbiterHandle, DramArbiter};
        use std::sync::Arc;

        let arbiter = Arc::new(DramArbiter::new(0.5));
        let mut contended = Device::alveo_u200();
        contended.attach_arbiter(ArbiterHandle::new(Arc::clone(&arbiter), 0));
        let mut free = Device::alveo_u200();

        // Four active CUs at share 0.5: factor 2 on every DRAM transfer.
        let _guards: Vec<_> = (0..4).map(|_| arbiter.activate()).collect();
        contended.charge_read(MemoryKind::Dram, 256);
        free.charge_read(MemoryKind::Dram, 256);
        let (c, f) = (contended.report(), free.report());
        assert_eq!(c.dram_cycles, f.dram_cycles, "base DRAM cost is unchanged");
        assert_eq!(c.contention_cycles, c.dram_cycles, "factor 2 doubles the transfer");
        assert_eq!(c.cycles, 2 * f.cycles);
        // BRAM and compute are private to the CU: no stall.
        contended.reset_query_state();
        contended.charge_read(MemoryKind::Bram, 4);
        contended.charge_pipelined_loop(100, 3);
        assert_eq!(contended.report().contention_cycles, 0);
    }

    #[test]
    fn unpipelined_loop_costs_more_than_pipelined() {
        let mut a = Device::alveo_u200();
        a.charge_pipelined_loop(1000, 3);
        let mut b = Device::alveo_u200();
        b.charge_unpipelined_loop(1000, 3);
        assert!(b.cycles() > 2 * a.cycles());
    }
}
