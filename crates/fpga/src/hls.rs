//! HLS-style kernel synthesis report.
//!
//! The paper's artifact is a Vitis/SDAccel kernel, and the natural way its
//! authors reason about the design is through the HLS synthesis report:
//! per-module pipeline depth, initiation interval, trip counts and resource
//! utilisation. This module renders the equivalent report for a simulated
//! configuration so users of the reproduction can see — in a familiar format —
//! how the verification lanes, the dataflow region and the on-chip areas were
//! "synthesised" by the cost model.

use crate::config::DeviceConfig;
use crate::pipeline::PipelineSpec;
use crate::resources::{OnChipAreas, ResourceEstimate};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One row of the latency section: a loop or function instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleLatency {
    /// Module (loop/function) name, e.g. `verify_dataflow`.
    pub name: String,
    /// Pipeline depth in cycles.
    pub depth: u64,
    /// Initiation interval (0 = not pipelined).
    pub initiation_interval: u64,
    /// Representative trip count used for the latency estimate.
    pub trip_count: u64,
}

impl ModuleLatency {
    /// Builds a row from a [`PipelineSpec`] and a trip count.
    pub fn from_spec(name: impl Into<String>, spec: PipelineSpec, trip_count: u64) -> Self {
        ModuleLatency {
            name: name.into(),
            depth: spec.depth,
            initiation_interval: spec.initiation_interval,
            trip_count,
        }
    }

    /// Estimated latency of the module in cycles for its trip count.
    pub fn latency_cycles(&self) -> u64 {
        if self.trip_count == 0 {
            return 0;
        }
        if self.initiation_interval == 0 {
            // Not pipelined: sequential iterations.
            self.depth * self.trip_count
        } else {
            self.depth + (self.trip_count - 1) * self.initiation_interval
        }
    }
}

/// A complete synthesis-style report for one kernel configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (e.g. `pefp_enumerate`).
    pub kernel: String,
    /// Target clock in MHz.
    pub clock_mhz: f64,
    /// Per-module latency rows.
    pub modules: Vec<ModuleLatency>,
    /// On-chip memory areas requested by the configuration.
    pub areas: OnChipAreas,
    /// Resource estimate against the card budget.
    pub resources: ResourceEstimate,
}

impl KernelReport {
    /// Creates a report skeleton for `kernel` on `config`.
    pub fn new(
        kernel: impl Into<String>,
        config: &DeviceConfig,
        areas: OnChipAreas,
        resources: ResourceEstimate,
    ) -> Self {
        KernelReport {
            kernel: kernel.into(),
            clock_mhz: config.clock_mhz,
            modules: Vec::new(),
            areas,
            resources,
        }
    }

    /// Adds a module latency row.
    pub fn push_module(&mut self, module: ModuleLatency) {
        self.modules.push(module);
    }

    /// Total estimated latency (sum over modules, i.e. assuming the modules
    /// execute sequentially — a conservative upper bound).
    pub fn total_latency_cycles(&self) -> u64 {
        self.modules.iter().map(|m| m.latency_cycles()).sum()
    }

    /// Renders the report in a fixed-width, HLS-report-like layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Kernel: {} ==", self.kernel);
        let _ = writeln!(out, "Target clock : {:.0} MHz", self.clock_mhz);
        let _ =
            writeln!(out, "Fits budget  : {}", if self.resources.fits() { "yes" } else { "NO" });
        let _ = writeln!(out);
        let _ = writeln!(out, "-- Latency (per module) --");
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>6} {:>12} {:>14}",
            "module", "depth", "II", "trip count", "latency (cyc)"
        );
        for m in &self.modules {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>6} {:>12} {:>14}",
                m.name,
                m.depth,
                m.initiation_interval,
                m.trip_count,
                m.latency_cycles()
            );
        }
        let _ =
            writeln!(out, "{:<24} {:>44}", "total (sequential bound)", self.total_latency_cycles());
        let _ = writeln!(out);
        let _ = writeln!(out, "-- On-chip memory (bytes) --");
        let _ = writeln!(out, "buffer area     : {}", self.areas.buffer_bytes);
        let _ = writeln!(out, "processing area : {}", self.areas.processing_bytes);
        let _ = writeln!(out, "graph cache     : {}", self.areas.graph_cache_bytes);
        let _ = writeln!(out, "barrier cache   : {}", self.areas.barrier_cache_bytes);
        let _ = writeln!(out, "dataflow FIFOs  : {}", self.areas.fifo_bytes);
        let _ = writeln!(out, "total           : {}", self.areas.total_bytes());
        let _ = writeln!(out);
        let _ = writeln!(out, "-- Utilisation --");
        let _ = writeln!(
            out,
            "LUT    : {:>10} / {:>10} ({:.1}%)",
            self.resources.luts,
            self.resources.budget.luts,
            self.resources.lut_utilisation() * 100.0
        );
        let _ = writeln!(
            out,
            "FF     : {:>10} / {:>10}",
            self.resources.flip_flops, self.resources.budget.flip_flops
        );
        let _ = writeln!(
            out,
            "BRAM36 : {:>10} / {:>10} ({:.1}%)",
            self.resources.bram36,
            self.resources.budget.bram36,
            self.resources.bram_utilisation() * 100.0
        );
        let _ = writeln!(
            out,
            "DSP    : {:>10} / {:>10}",
            self.resources.dsp, self.resources.budget.dsp
        );
        for violation in self.resources.violations() {
            let _ = writeln!(out, "VIOLATION: {violation}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{ModuleCosts, ResourceBudget};

    fn sample_report() -> KernelReport {
        let config = DeviceConfig::alveo_u200();
        let areas = OnChipAreas {
            buffer_bytes: 64 * 1024,
            processing_bytes: 16 * 1024,
            graph_cache_bytes: 128 * 1024,
            barrier_cache_bytes: 32 * 1024,
            fifo_bytes: 4 * 1024,
        };
        let resources = ResourceEstimate::estimate(
            8,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200(),
        );
        let mut report = KernelReport::new("pefp_enumerate", &config, areas, resources);
        report.push_module(ModuleLatency::from_spec(
            "expansion",
            PipelineSpec::fully_pipelined(4),
            1_000,
        ));
        report.push_module(ModuleLatency::from_spec(
            "verify_dataflow",
            PipelineSpec::fully_pipelined(6),
            1_000,
        ));
        report.push_module(ModuleLatency {
            name: "flush_to_dram".into(),
            depth: 10,
            initiation_interval: 0,
            trip_count: 3,
        });
        report
    }

    #[test]
    fn pipelined_module_latency_follows_the_hls_formula() {
        let m = ModuleLatency::from_spec("x", PipelineSpec::fully_pipelined(5), 100);
        assert_eq!(m.latency_cycles(), 5 + 99);
        let m =
            ModuleLatency { name: "y".into(), depth: 5, initiation_interval: 2, trip_count: 100 };
        assert_eq!(m.latency_cycles(), 5 + 99 * 2);
    }

    #[test]
    fn unpipelined_module_latency_is_sequential() {
        let m =
            ModuleLatency { name: "z".into(), depth: 7, initiation_interval: 0, trip_count: 10 };
        assert_eq!(m.latency_cycles(), 70);
    }

    #[test]
    fn zero_trip_count_is_free() {
        let m = ModuleLatency::from_spec("none", PipelineSpec::fully_pipelined(9), 0);
        assert_eq!(m.latency_cycles(), 0);
    }

    #[test]
    fn total_latency_sums_modules() {
        let report = sample_report();
        let expected: u64 = report.modules.iter().map(|m| m.latency_cycles()).sum();
        assert_eq!(report.total_latency_cycles(), expected);
        assert!(expected > 2_000);
    }

    #[test]
    fn rendered_report_contains_all_sections_and_modules() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("Kernel: pefp_enumerate"));
        assert!(text.contains("300 MHz"));
        assert!(text.contains("expansion"));
        assert!(text.contains("verify_dataflow"));
        assert!(text.contains("flush_to_dram"));
        assert!(text.contains("BRAM36"));
        assert!(text.contains("Fits budget  : yes"));
        assert!(!text.contains("VIOLATION"));
    }

    #[test]
    fn violations_show_up_in_the_rendered_report() {
        let config = DeviceConfig::alveo_u200();
        let areas = OnChipAreas { buffer_bytes: 64 << 20, ..Default::default() };
        let resources = ResourceEstimate::estimate(
            4,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200(),
        );
        let report = KernelReport::new("too_big", &config, areas, resources);
        let text = report.render();
        assert!(text.contains("Fits budget  : NO"));
        assert!(text.contains("VIOLATION: BRAM36"));
    }
}
