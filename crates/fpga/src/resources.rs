//! FPGA resource budgeting: does a given PEFP engine configuration fit on the
//! target card?
//!
//! The paper reports results for a Xilinx Alveo U200 and never varies the
//! card, but any reproduction that wants to sweep the number of verification
//! lanes or the BRAM area sizes (our ablation benches do) needs to know when a
//! configuration stops being implementable. This module provides a
//! first-order utilisation model in the spirit of an HLS resource report:
//! BRAM36 blocks for the on-chip areas and FIFOs, LUT/FF/DSP estimates per
//! replicated module, checked against the published U200 budget.

use serde::{Deserialize, Serialize};

/// The programmable-logic resources available on a card.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (registers).
    pub flip_flops: u64,
    /// BRAM36 blocks (36 Kbit each).
    pub bram36: u64,
    /// UltraRAM blocks (288 Kbit each).
    pub uram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl ResourceBudget {
    /// The Xilinx Alveo U200 (XCU200 / VU9P) budget as published in the data
    /// sheet: ~1.18 M LUTs, ~2.36 M FFs, 2,160 BRAM36, 960 URAM, 6,840 DSPs.
    pub fn alveo_u200() -> Self {
        ResourceBudget {
            luts: 1_182_000,
            flip_flops: 2_364_000,
            bram36: 2_160,
            uram: 960,
            dsp: 6_840,
        }
    }

    /// A deliberately tiny budget used by tests that need to exercise the
    /// "does not fit" path without building huge configurations.
    pub fn tiny_for_tests() -> Self {
        ResourceBudget { luts: 10_000, flip_flops: 20_000, bram36: 16, uram: 0, dsp: 32 }
    }
}

/// Per-module LUT/FF/DSP cost constants for the estimator. These are
/// first-order figures typical of small HLS kernels of the corresponding
/// complexity; absolute accuracy is not required, only that the totals scale
/// correctly with the replication factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleCosts {
    /// LUTs per verification lane (target + barrier + visited checker + merge).
    pub luts_per_lane: u64,
    /// Flip-flops per verification lane.
    pub ffs_per_lane: u64,
    /// DSPs per verification lane (address arithmetic).
    pub dsps_per_lane: u64,
    /// LUTs for the expansion module and batch controller (fixed).
    pub luts_fixed: u64,
    /// Flip-flops for the expansion module and batch controller (fixed).
    pub ffs_fixed: u64,
    /// LUTs for the DRAM/PCIe interface logic (fixed).
    pub luts_memory_interface: u64,
}

impl Default for ModuleCosts {
    fn default() -> Self {
        ModuleCosts {
            luts_per_lane: 4_500,
            ffs_per_lane: 6_000,
            dsps_per_lane: 4,
            luts_fixed: 18_000,
            ffs_fixed: 24_000,
            luts_memory_interface: 45_000,
        }
    }
}

/// The on-chip memory areas a PEFP engine configuration asks for, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnChipAreas {
    /// Buffer area for intermediate paths (`P` in the paper).
    pub buffer_bytes: usize,
    /// Processing area (`P'`).
    pub processing_bytes: usize,
    /// Cached CSR vertex + edge arrays.
    pub graph_cache_bytes: usize,
    /// Cached barrier array.
    pub barrier_cache_bytes: usize,
    /// All dataflow FIFOs.
    pub fifo_bytes: usize,
}

impl OnChipAreas {
    /// Total on-chip bytes requested.
    pub fn total_bytes(&self) -> usize {
        self.buffer_bytes
            + self.processing_bytes
            + self.graph_cache_bytes
            + self.barrier_cache_bytes
            + self.fifo_bytes
    }
}

/// The estimated utilisation of one configuration against one budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Estimated LUT usage.
    pub luts: u64,
    /// Estimated flip-flop usage.
    pub flip_flops: u64,
    /// Estimated BRAM36 blocks.
    pub bram36: u64,
    /// Estimated DSP slices.
    pub dsp: u64,
    /// The budget the estimate was checked against.
    pub budget: ResourceBudget,
}

/// Number of BRAM36 blocks needed to hold `bytes` (each block stores 4 KiB
/// when configured as 36 Kbit × 1).
pub fn bram36_blocks_for(bytes: usize) -> u64 {
    const BYTES_PER_BLOCK: usize = 36 * 1024 / 8; // 4,608 bytes
    (bytes.div_ceil(BYTES_PER_BLOCK)) as u64
}

impl ResourceEstimate {
    /// Estimates the resource usage of a configuration with
    /// `verification_lanes` replicated validity-check modules and the given
    /// on-chip areas, using `costs` for the logic constants.
    pub fn estimate(
        verification_lanes: usize,
        areas: &OnChipAreas,
        costs: &ModuleCosts,
        budget: ResourceBudget,
    ) -> ResourceEstimate {
        let lanes = verification_lanes as u64;
        let luts = costs.luts_fixed + costs.luts_memory_interface + lanes * costs.luts_per_lane;
        let flip_flops = costs.ffs_fixed + lanes * costs.ffs_per_lane;
        let dsp = lanes * costs.dsps_per_lane;
        let bram36 = bram36_blocks_for(areas.total_bytes());
        ResourceEstimate { luts, flip_flops, bram36, dsp, budget }
    }

    /// LUT utilisation as a fraction of the budget.
    pub fn lut_utilisation(&self) -> f64 {
        self.luts as f64 / self.budget.luts as f64
    }

    /// BRAM utilisation as a fraction of the budget.
    pub fn bram_utilisation(&self) -> f64 {
        self.bram36 as f64 / self.budget.bram36 as f64
    }

    /// Whether every resource fits within the budget.
    pub fn fits(&self) -> bool {
        self.luts <= self.budget.luts
            && self.flip_flops <= self.budget.flip_flops
            && self.bram36 <= self.budget.bram36
            && self.dsp <= self.budget.dsp
    }

    /// Human-readable list of the resources that exceed the budget
    /// (empty when the configuration fits).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.luts > self.budget.luts {
            v.push(format!("LUT: {} > {}", self.luts, self.budget.luts));
        }
        if self.flip_flops > self.budget.flip_flops {
            v.push(format!("FF: {} > {}", self.flip_flops, self.budget.flip_flops));
        }
        if self.bram36 > self.budget.bram36 {
            v.push(format!("BRAM36: {} > {}", self.bram36, self.budget.bram36));
        }
        if self.dsp > self.budget.dsp {
            v.push(format!("DSP: {} > {}", self.dsp, self.budget.dsp));
        }
        v
    }

    /// The largest number of verification lanes that still fits the budget
    /// with the given areas and costs (0 when even one lane does not fit).
    pub fn max_lanes(areas: &OnChipAreas, costs: &ModuleCosts, budget: ResourceBudget) -> usize {
        let mut lo = 0usize;
        let mut hi = 4_096usize;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if ResourceEstimate::estimate(mid, areas, costs, budget).fits() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas_kb(buffer: usize, processing: usize, graph: usize, barrier: usize) -> OnChipAreas {
        OnChipAreas {
            buffer_bytes: buffer * 1024,
            processing_bytes: processing * 1024,
            graph_cache_bytes: graph * 1024,
            barrier_cache_bytes: barrier * 1024,
            fifo_bytes: 0,
        }
    }

    #[test]
    fn bram_block_rounding_is_exact_at_boundaries() {
        assert_eq!(bram36_blocks_for(0), 0);
        assert_eq!(bram36_blocks_for(1), 1);
        assert_eq!(bram36_blocks_for(4_608), 1);
        assert_eq!(bram36_blocks_for(4_609), 2);
        assert_eq!(bram36_blocks_for(46_080), 10);
    }

    #[test]
    fn default_u200_configuration_fits_comfortably() {
        let areas = areas_kb(512, 128, 2_048, 256);
        let est = ResourceEstimate::estimate(
            8,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200(),
        );
        assert!(est.fits(), "violations: {:?}", est.violations());
        assert!(est.lut_utilisation() < 0.25);
        assert!(est.bram_utilisation() < 0.5);
    }

    #[test]
    fn logic_scales_linearly_with_lanes() {
        let areas = areas_kb(64, 16, 64, 16);
        let costs = ModuleCosts::default();
        let budget = ResourceBudget::alveo_u200();
        let one = ResourceEstimate::estimate(1, &areas, &costs, budget);
        let four = ResourceEstimate::estimate(4, &areas, &costs, budget);
        assert_eq!(four.luts - one.luts, 3 * costs.luts_per_lane);
        assert_eq!(four.flip_flops - one.flip_flops, 3 * costs.ffs_per_lane);
        assert_eq!(four.dsp, 4 * costs.dsps_per_lane);
        // BRAM does not depend on the lane count.
        assert_eq!(four.bram36, one.bram36);
    }

    #[test]
    fn oversized_areas_violate_the_bram_budget() {
        // 2,160 blocks × 4,608 B ≈ 9.95 MB; ask for 32 MB of buffer.
        let areas = OnChipAreas { buffer_bytes: 32 << 20, ..Default::default() };
        let est = ResourceEstimate::estimate(
            4,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200(),
        );
        assert!(!est.fits());
        let v = est.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("BRAM36"));
    }

    #[test]
    fn too_many_lanes_violate_the_lut_budget() {
        let areas = areas_kb(8, 8, 8, 8);
        let est = ResourceEstimate::estimate(
            2,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::tiny_for_tests(),
        );
        assert!(!est.fits());
        assert!(est.violations().iter().any(|v| v.starts_with("LUT")));
    }

    #[test]
    fn max_lanes_is_the_tipping_point() {
        let areas = areas_kb(16, 8, 32, 8);
        let costs = ModuleCosts::default();
        let budget = ResourceBudget::alveo_u200();
        let max = ResourceEstimate::max_lanes(&areas, &costs, budget);
        assert!(max > 0);
        assert!(ResourceEstimate::estimate(max, &areas, &costs, budget).fits());
        assert!(!ResourceEstimate::estimate(max + 1, &areas, &costs, budget).fits());
    }

    #[test]
    fn max_lanes_is_zero_when_nothing_fits() {
        let areas = OnChipAreas { buffer_bytes: 1 << 20, ..Default::default() };
        let max = ResourceEstimate::max_lanes(
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::tiny_for_tests(),
        );
        assert_eq!(max, 0);
    }

    #[test]
    fn onchip_total_adds_every_area() {
        let areas = OnChipAreas {
            buffer_bytes: 10,
            processing_bytes: 20,
            graph_cache_bytes: 30,
            barrier_cache_bytes: 40,
            fifo_bytes: 50,
        };
        assert_eq!(areas.total_bytes(), 150);
    }
}
