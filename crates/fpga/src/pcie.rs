//! PCIe host↔device transfer model.
//!
//! The paper measures 100–300 ms to transfer 1 000 queries plus their
//! preprocessed subgraphs to the card at once, i.e. ~0.1–0.3 ms per query,
//! and argues this is negligible against preprocessing and query time
//! (Section VII-A). The model reproduces that behaviour: a fixed DMA setup
//! latency plus a bandwidth term.

use serde::{Deserialize, Serialize};

/// PCIe link between host and FPGA card.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pcie {
    bandwidth_gbps: f64,
    setup_us: f64,
}

impl Pcie {
    /// Creates a link with the given bandwidth (GB/s) and per-transfer setup
    /// latency (µs).
    pub fn new(bandwidth_gbps: f64, setup_us: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(setup_us >= 0.0, "setup latency cannot be negative");
        Pcie { bandwidth_gbps, setup_us }
    }

    /// Simulated seconds needed to move `bytes` across the link in one DMA
    /// transfer.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.setup_us * 1.0e-6 + bytes as f64 / (self.bandwidth_gbps * 1.0e9)
    }

    /// Simulated milliseconds for one transfer of `bytes`.
    pub fn transfer_millis(&self, bytes: usize) -> f64 {
        self.transfer_seconds(bytes) * 1.0e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_transfers_are_dominated_by_setup() {
        let p = Pcie::new(77.0, 10.0);
        let t = p.transfer_seconds(4 * 1024);
        assert!(t > 9.0e-6 && t < 20.0e-6, "t = {t}");
    }

    #[test]
    fn large_transfers_scale_with_bandwidth() {
        let p = Pcie::new(77.0, 10.0);
        // 7.7 GB at 77 GB/s ≈ 0.1 s.
        let t = p.transfer_seconds(7_700_000_000);
        assert!((t - 0.1).abs() < 0.001, "t = {t}");
    }

    #[test]
    fn per_query_cost_matches_the_paper_ballpark() {
        // ~1000 queries with ~20 MB of subgraph+barrier data in total:
        // the paper reports 100-300 ms for the batch, 0.1-0.3 ms per query.
        let p = Pcie::new(77.0, 10.0);
        let per_query_bytes = 200 * 1024;
        let ms = p.transfer_millis(per_query_bytes);
        assert!(ms < 0.3, "per-query transfer {ms} ms should be negligible");
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_is_rejected() {
        Pcie::new(0.0, 1.0);
    }
}
