//! Power and energy model.
//!
//! One of the paper's motivations for choosing an FPGA over a GPU (Section I)
//! is energy efficiency. The evaluation itself never reports watts, but a
//! reproduction that exposes a first-order energy estimate lets users reason
//! about the total-cost-of-ownership claim: the device model already counts
//! cycles and memory events, so converting them to joules only needs per-event
//! energy constants. The defaults are representative figures for a 16 nm
//! UltraScale+ part and a Xeon-class host and can be overridden.

use crate::counters::MemoryCounters;
use serde::{Deserialize, Serialize};

/// Energy/power constants of the accelerator card and the host CPU used for
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power of the FPGA card in watts (shell + idle logic + DRAM
    /// refresh).
    pub fpga_static_watts: f64,
    /// Dynamic energy per active kernel cycle in nanojoules (toggling logic,
    /// clock tree) for a mid-size design.
    pub fpga_nj_per_cycle: f64,
    /// Energy per 32-bit BRAM access in nanojoules.
    pub fpga_nj_per_bram_access: f64,
    /// Energy per 32-bit word moved to or from card DRAM in nanojoules.
    pub fpga_nj_per_dram_word: f64,
    /// Average package power of the host CPU while running the baseline, in
    /// watts (a single active Xeon E5-2620 v4 core plus its uncore share).
    pub cpu_watts: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            fpga_static_watts: 25.0,
            fpga_nj_per_cycle: 30.0,
            fpga_nj_per_bram_access: 0.05,
            fpga_nj_per_dram_word: 2.5,
            cpu_watts: 45.0,
        }
    }
}

/// Energy estimate for one query (or one batch of queries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// FPGA energy in millijoules.
    pub fpga_millijoules: f64,
    /// Host-CPU energy in millijoules for the baseline runtime supplied to
    /// [`PowerModel::compare`] (0 when no baseline time was given).
    pub cpu_millijoules: f64,
    /// `cpu_millijoules / fpga_millijoules` (0 when either side is 0).
    pub efficiency_ratio: f64,
}

impl PowerModel {
    /// Estimates the FPGA energy of a kernel run: `cycles` active cycles at
    /// the given clock, plus the memory traffic recorded in `counters`.
    pub fn fpga_energy_mj(&self, cycles: u64, clock_mhz: f64, counters: &MemoryCounters) -> f64 {
        let seconds = if clock_mhz > 0.0 { cycles as f64 / (clock_mhz * 1e6) } else { 0.0 };
        let static_mj = self.fpga_static_watts * seconds * 1e3;
        let dynamic_mj = cycles as f64 * self.fpga_nj_per_cycle * 1e-6;
        let bram_mj = (counters.bram_reads + counters.bram_writes) as f64
            * self.fpga_nj_per_bram_access
            * 1e-6;
        let dram_mj = counters.dram_words_total() as f64 * self.fpga_nj_per_dram_word * 1e-6;
        static_mj + dynamic_mj + bram_mj + dram_mj
    }

    /// Estimates the host CPU energy of a baseline that ran for
    /// `cpu_millis` milliseconds.
    pub fn cpu_energy_mj(&self, cpu_millis: f64) -> f64 {
        self.cpu_watts * cpu_millis
    }

    /// Builds the FPGA-vs-CPU energy comparison the introduction's
    /// energy-efficiency argument is about.
    pub fn compare(
        &self,
        cycles: u64,
        clock_mhz: f64,
        counters: &MemoryCounters,
        cpu_millis: f64,
    ) -> EnergyReport {
        let fpga_millijoules = self.fpga_energy_mj(cycles, clock_mhz, counters);
        let cpu_millijoules = self.cpu_energy_mj(cpu_millis);
        let efficiency_ratio = if fpga_millijoules > 0.0 && cpu_millijoules > 0.0 {
            cpu_millijoules / fpga_millijoules
        } else {
            0.0
        };
        EnergyReport { fpga_millijoules, cpu_millijoules, efficiency_ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(bram: u64, dram_words: u64) -> MemoryCounters {
        MemoryCounters { bram_reads: bram, dram_words_read: dram_words, ..MemoryCounters::new() }
    }

    #[test]
    fn zero_work_costs_zero_energy() {
        let model = PowerModel::default();
        let e = model.fpga_energy_mj(0, 300.0, &MemoryCounters::new());
        assert_eq!(e, 0.0);
        assert_eq!(model.cpu_energy_mj(0.0), 0.0);
    }

    #[test]
    fn energy_grows_monotonically_with_cycles_and_traffic() {
        let model = PowerModel::default();
        let little = model.fpga_energy_mj(1_000, 300.0, &counters(100, 100));
        let more_cycles = model.fpga_energy_mj(10_000, 300.0, &counters(100, 100));
        let more_traffic = model.fpga_energy_mj(1_000, 300.0, &counters(100, 100_000));
        assert!(more_cycles > little);
        assert!(more_traffic > little);
    }

    #[test]
    fn dram_traffic_is_much_more_expensive_than_bram_traffic() {
        let model = PowerModel::default();
        let bram_heavy = model.fpga_energy_mj(0, 300.0, &counters(10_000, 0));
        let dram_heavy = model.fpga_energy_mj(0, 300.0, &counters(0, 10_000));
        assert!(dram_heavy > 10.0 * bram_heavy);
    }

    #[test]
    fn comparison_reports_the_cpu_to_fpga_ratio() {
        let model = PowerModel::default();
        // 3 ms of kernel time at 300 MHz = 900k cycles; 50 ms of CPU time.
        let report = model.compare(900_000, 300.0, &counters(10_000, 5_000), 50.0);
        assert!(report.fpga_millijoules > 0.0);
        assert!((report.cpu_millijoules - 45.0 * 50.0).abs() < 1e-9);
        assert!(report.efficiency_ratio > 1.0, "FPGA should be more efficient here");
        let expected = report.cpu_millijoules / report.fpga_millijoules;
        assert!((report.efficiency_ratio - expected).abs() < 1e-12);
    }

    #[test]
    fn missing_baseline_gives_zero_ratio() {
        let model = PowerModel::default();
        let report = model.compare(1_000, 300.0, &MemoryCounters::new(), 0.0);
        assert_eq!(report.cpu_millijoules, 0.0);
        assert_eq!(report.efficiency_ratio, 0.0);
    }

    #[test]
    fn zero_clock_contributes_no_static_energy() {
        let model = PowerModel::default();
        let e = model.fpga_energy_mj(1_000, 0.0, &MemoryCounters::new());
        // Only the dynamic per-cycle term remains.
        assert!((e - 1_000.0 * model.fpga_nj_per_cycle * 1e-6).abs() < 1e-12);
    }
}
