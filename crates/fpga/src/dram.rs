//! Off-chip DRAM model.
//!
//! DRAM on the card is large but slow: the paper cites 7–8 cycles per read
//! against BRAM's single cycle (Section VI-B), which is the entire motivation
//! for the buffer-and-batch and caching techniques. Sequential (burst)
//! accesses amortise the initial latency — the paper exploits this by always
//! reading/writing intermediate paths from the *tail* of the DRAM path set so
//! transfers stay contiguous.

use serde::{Deserialize, Serialize};

/// Off-chip DRAM with latency/burst cost accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dram {
    capacity: usize,
    read_latency: u64,
    write_latency: u64,
    burst_words_per_cycle: u64,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(
        capacity: usize,
        read_latency: u64,
        write_latency: u64,
        burst_words_per_cycle: u64,
    ) -> Self {
        assert!(burst_words_per_cycle > 0, "burst rate must be positive");
        Dram { capacity, read_latency, write_latency, burst_words_per_cycle }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cycle cost of one random read of `words` consecutive 32-bit words:
    /// initial latency plus the burst transfer.
    pub fn read_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.read_latency + words.div_ceil(self.burst_words_per_cycle)
        }
    }

    /// Cycle cost of one random write of `words` consecutive 32-bit words.
    pub fn write_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.write_latency + words.div_ceil(self.burst_words_per_cycle)
        }
    }

    /// Cost of `accesses` scattered single-word reads (no burst possible) —
    /// the pattern the graph cache avoids.
    pub fn random_read_cost(&self, accesses: u64) -> u64 {
        accesses * self.read_cost(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_amortises_latency() {
        let d = Dram::new(1 << 30, 8, 8, 2);
        // A single word costs latency + 1 cycle of transfer.
        assert_eq!(d.read_cost(1), 9);
        // 100 words: 8 + 50 — far less than 100 individual accesses (900).
        assert_eq!(d.read_cost(100), 58);
        assert_eq!(d.random_read_cost(100), 900);
    }

    #[test]
    fn zero_sized_transfers_are_free() {
        let d = Dram::new(1024, 8, 8, 2);
        assert_eq!(d.read_cost(0), 0);
        assert_eq!(d.write_cost(0), 0);
    }

    #[test]
    fn write_cost_mirrors_read_cost() {
        let d = Dram::new(1024, 7, 9, 4);
        assert_eq!(d.write_cost(8), 9 + 2);
        assert_eq!(d.read_cost(8), 7 + 2);
    }

    #[test]
    #[should_panic(expected = "burst rate")]
    fn zero_burst_rate_is_rejected() {
        Dram::new(1024, 8, 8, 0);
    }
}
