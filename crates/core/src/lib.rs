//! # pefp-core
//!
//! The paper's primary contribution: **PEFP**, k-hop constrained s-t simple
//! path enumeration designed for an FPGA, reproduced in Rust against the
//! simulated device of `pefp-fpga`.
//!
//! The crate is organised along the paper's own structure:
//!
//! * [`preprocess`] — host-side **Pre-BFS** (Section V): `(k-1)`-hop
//!   bidirectional BFS, Theorem 1 vertex cut, induced subgraph + barrier,
//!   with a reusable [`PrepareContext`] that makes repeated preparation
//!   O(touched subgraph) instead of O(|V| + |E|).
//! * [`path`] — fixed-width intermediate path rows with the neighbour-pointer
//!   windows Batch-DFS needs.
//! * [`engine`] — the device-side expansion-and-verification engine
//!   (Section VI): buffer/processing areas, DRAM spilling, Batch-DFS and FIFO
//!   batching, BRAM caching, and the basic / data-separated verification
//!   pipelines, all charged against the simulated device.
//! * [`variants`] — the full system plus the four ablation variants
//!   (No-Pre-BFS, No-Batch-DFS, No-Cache, No-DataSep) and the high-level
//!   [`run_query`] / [`run_query_with_sink`] entry points. The `_with_sink`
//!   forms stream results through a [`PathSink`] instead of materialising
//!   `Vec<Vec<VertexId>>` at every layer boundary.
//!
//! ## Quick example
//!
//! ```
//! use pefp_core::{run_query, PefpVariant};
//! use pefp_fpga::DeviceConfig;
//! use pefp_graph::{CsrGraph, VertexId};
//!
//! // A diamond: two 2-hop paths from 0 to 3.
//! let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let result = run_query(
//!     &g,
//!     VertexId(0),
//!     VertexId(3),
//!     3,
//!     PefpVariant::Full,
//!     &DeviceConfig::alveo_u200(),
//! );
//! assert_eq!(result.num_paths, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counting;
pub mod engine;
pub mod labeled;
pub mod multi_query;
pub mod options;
pub mod path;
pub mod planner;
pub mod preprocess;
pub mod result;
pub mod routing;
pub mod variants;

pub use counting::{
    count_simple_paths, count_st_walks, count_st_walks_checked, count_walks_from,
    count_walks_from_checked, walk_profile, walk_profile_checked, QueryEstimate,
};
pub use engine::PefpEngine;
pub use labeled::{filter_by_labels, run_labeled_query};
pub use multi_query::{run_query_batch, run_query_batch_with_sinks, BatchReport};
pub use options::{BatchStrategy, CancelToken, EngineOptions, VerificationPipeline};
pub use path::{TempPath, MAX_K};
pub use planner::{plan_query, QueryPlan};
pub use preprocess::{
    no_prebfs_preprocess, no_prebfs_snapshot_with, no_prebfs_with, pre_bfs, pre_bfs_snapshot_with,
    pre_bfs_with, PrepareContext, PrepareStats, PreparedQuery, TouchedSet,
};
pub use result::{EngineOutput, EngineStats, PefpRunResult};
pub use routing::{
    route_query, EngineChoice, EngineCosts, RouteContext, RouteDecision, RouteFeatures,
    RoutingTable,
};
pub use variants::{
    prepare, prepare_snapshot_with, prepare_with, run_prepared, run_prepared_on_device,
    run_prepared_with_sink, run_query, run_query_with_options, run_query_with_sink, PefpVariant,
};

// The streaming-result vocabulary used by the sink-generic entry points,
// re-exported so `pefp-core` callers need not name `pefp-graph` directly.
pub use pefp_graph::sink::{CollectSink, CountingSink, FirstN, FnSink, PathSink, TranslateSink};
