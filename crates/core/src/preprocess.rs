//! Host-side preprocessing.
//!
//! Section V of the paper: before a query is shipped to the device, the host
//! runs **Pre-BFS** — a `(k-1)`-hop bidirectional BFS — to
//!
//! 1. compute `sd(s, ·)` on `G` and `sd(·, t)` on `G_rev`,
//! 2. keep only the vertices with `sd(s,u) + sd(u,t) ≤ k` (Theorem 1),
//! 3. extract the induced subgraph `G'` in CSR form, and
//! 4. send `s`, `t`, `G'` and the *barrier* array `bar[u] = sd(u, t)` to the
//!    device.
//!
//! `(k-1)` hops suffice because the only valid vertices a `k`-hop BFS could
//! additionally discover are `s` and `t` themselves (the paper's second proof
//! in Section V); the implementation force-keeps the two endpoints to cover
//! that corner case.
//!
//! The module also provides the *no-Pre-BFS* preprocessing used by the
//! ablation in Fig. 12 (barrier from a full k-hop reverse BFS, no subgraph
//! extraction) and re-exports timing helpers used by the experiment runner.

use pefp_graph::bfs::{khop_bfs, UNREACHED};
use pefp_graph::induced::{induce_subgraph, InducedSubgraph};
use pefp_graph::{CsrGraph, VertexId};
use std::time::Instant;

/// Everything the device needs to run one query.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The graph the device will search (the induced subgraph `G'` for
    /// Pre-BFS, or the full graph for the no-Pre-BFS ablation), with densely
    /// remapped vertex ids.
    pub graph: CsrGraph,
    /// Mapping between original and device vertex ids (`None` when the full
    /// graph is used unchanged).
    pub mapping: Option<InducedSubgraph>,
    /// Source vertex in device ids.
    pub s: VertexId,
    /// Target vertex in device ids.
    pub t: VertexId,
    /// Hop constraint.
    pub k: u32,
    /// Barrier array: `bar[u] = sd(u, t)` in device ids, clamped to `k + 1`
    /// for vertices that cannot reach `t` within `k` hops.
    pub barrier: Vec<u32>,
    /// `false` when preprocessing already proved the result set is empty
    /// (e.g. `t` unreachable); the device run can then be skipped.
    pub feasible: bool,
    /// Host wall-clock time spent preprocessing, in milliseconds.
    pub host_millis: f64,
}

impl PreparedQuery {
    /// Number of bytes that must be transferred to device DRAM for this query
    /// (CSR arrays + barrier + query parameters), used for the PCIe model.
    pub fn transfer_bytes(&self) -> usize {
        self.graph.byte_size() + self.barrier.len() * 4 + 4 * 4
    }

    /// Translates a path expressed in device ids back to original graph ids.
    pub fn translate_path(&self, path: &[VertexId]) -> Vec<VertexId> {
        match &self.mapping {
            Some(m) => m.translate_path(path),
            None => path.to_vec(),
        }
    }
}

/// Pre-BFS preprocessing (the paper's Algorithm in Section V).
pub fn pre_bfs(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> PreparedQuery {
    let start = Instant::now();
    assert!(s.index() < g.num_vertices(), "source {s} out of range");
    assert!(t.index() < g.num_vertices(), "target {t} out of range");

    // Degenerate hop budgets: k = 0 only ever admits the trivial s == t path.
    if k == 0 || s == t {
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(g, s, t, k, elapsed);
    }

    // (k-1)-hop bidirectional BFS.
    let bound = k - 1;
    let sds = khop_bfs(g, s, bound);
    let rev = g.reverse();
    let sdt = khop_bfs(&rev, t, bound);

    // Theorem 1 cut, with s and t force-kept (they are the only valid vertices
    // a k-hop BFS could still add).
    let keep = |u: VertexId| {
        if u == s || u == t {
            return true;
        }
        let a = sds[u.index()];
        let b = sdt[u.index()];
        a != UNREACHED && b != UNREACHED && a + b <= k
    };
    let mapping = induce_subgraph(g, keep);

    let new_s = mapping.to_new(s).expect("s is force-kept");
    let new_t = mapping.to_new(t).expect("t is force-kept");

    // Barrier in the new id space: sd(u, t) clamped to k + 1. For vertices
    // whose distance was not discovered by the (k-1)-hop reverse BFS the true
    // distance is at least k, which only matters for s (see module docs); the
    // barrier check never reads bar[s], so the clamp is harmless.
    let barrier: Vec<u32> = mapping
        .old_of_new
        .iter()
        .map(|&old| {
            let d = sdt[old.index()];
            if d == UNREACHED || d > k {
                k + 1
            } else {
                d
            }
        })
        .collect();

    // Feasible iff t is reachable from s within k hops: either the BFS saw it
    // directly, or (distance exactly k) both frontiers meet.
    let feasible = sds[t.index()] != UNREACHED
        || g.successors(s)
            .iter()
            .any(|&v| v == t || (sdt[v.index()] != UNREACHED && sdt[v.index()] < k));

    let host_millis = start.elapsed().as_secs_f64() * 1e3;
    PreparedQuery {
        graph: mapping.graph.clone(),
        s: new_s,
        t: new_t,
        k,
        barrier,
        feasible,
        mapping: Some(mapping),
        host_millis,
    }
}

/// Preprocessing for the PEFP-No-Pre-BFS ablation (Fig. 12): the device
/// receives the *full* graph; only the barrier array is computed (k-hop BFS
/// from `t` on the reverse graph), because the barrier check is part of the
/// core algorithm rather than of the Pre-BFS optimisation.
pub fn no_prebfs_preprocess(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> PreparedQuery {
    let start = Instant::now();
    assert!(s.index() < g.num_vertices(), "source {s} out of range");
    assert!(t.index() < g.num_vertices(), "target {t} out of range");
    if k == 0 || s == t {
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(g, s, t, k, elapsed);
    }
    let rev = g.reverse();
    let mut barrier = khop_bfs(&rev, t, k);
    for b in &mut barrier {
        if *b == UNREACHED {
            *b = k + 1;
        }
    }
    let feasible = barrier[s.index()] <= k;
    let host_millis = start.elapsed().as_secs_f64() * 1e3;
    PreparedQuery { graph: g.clone(), mapping: None, s, t, k, barrier, feasible, host_millis }
}

/// Shared handling of `k == 0` and `s == t`.
fn trivial_prepared(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    host_millis: f64,
) -> PreparedQuery {
    PreparedQuery {
        graph: g.clone(),
        mapping: None,
        s,
        t,
        k,
        barrier: vec![k + 1; g.num_vertices()],
        feasible: s == t,
        host_millis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::generators::chung_lu;

    fn sample() -> CsrGraph {
        // The Fig. 3 example in miniature: a short s->t corridor plus a bundle
        // of vertices reachable from s that can never reach t.
        CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 9), // corridor 0 -> 1 -> 2 -> 9 (t)
                (0, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8), // dead-end tail
            ],
        )
    }

    #[test]
    fn prebfs_removes_vertices_that_cannot_reach_t() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        assert!(prep.feasible);
        // Only the corridor 0,1,2,9 can satisfy sds + sdt <= 5.
        assert_eq!(prep.graph.num_vertices(), 4);
        let mapping = prep.mapping.as_ref().unwrap();
        for dead in 3..=8u32 {
            assert_eq!(mapping.to_new(VertexId(dead)), None);
        }
    }

    #[test]
    fn barrier_equals_distance_to_t_in_new_ids() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let mapping = prep.mapping.as_ref().unwrap();
        let new2 = mapping.to_new(VertexId(2)).unwrap();
        assert_eq!(prep.barrier[new2.index()], 1);
        assert_eq!(prep.barrier[prep.t.index()], 0);
    }

    #[test]
    fn exact_distance_k_keeps_the_endpoints() {
        // Chain of length 4; k = 4 means sd(s, t) == k exactly.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let prep = pre_bfs(&g, VertexId(0), VertexId(4), 4);
        assert!(prep.feasible);
        assert_eq!(prep.graph.num_vertices(), 5);
        // s itself is outside the (k-1)-hop reverse frontier, so its barrier is
        // clamped to k + 1; that slot is never read by the barrier check.
        assert_eq!(prep.barrier[prep.s.index()], 5);
    }

    #[test]
    fn infeasible_query_is_detected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let prep = pre_bfs(&g, VertexId(0), VertexId(3), 6);
        assert!(!prep.feasible);
    }

    #[test]
    fn no_prebfs_keeps_the_whole_graph() {
        let g = sample();
        let prep = no_prebfs_preprocess(&g, VertexId(0), VertexId(9), 5);
        assert_eq!(prep.graph.num_vertices(), g.num_vertices());
        assert!(prep.mapping.is_none());
        assert_eq!(prep.barrier[9], 0);
        assert_eq!(prep.barrier[2], 1);
        assert_eq!(prep.barrier[8], 6); // cannot reach t -> clamped to k + 1
    }

    #[test]
    fn prebfs_subgraph_is_never_larger_than_no_prebfs() {
        let g = chung_lu(300, 6.0, 2.2, 5).to_csr();
        for &(s, t, k) in &[(0u32, 100u32, 4u32), (5, 200, 5), (10, 20, 3)] {
            let a = pre_bfs(&g, VertexId(s), VertexId(t), k);
            let b = no_prebfs_preprocess(&g, VertexId(s), VertexId(t), k);
            assert!(a.graph.num_vertices() <= b.graph.num_vertices());
            assert!(a.graph.num_edges() <= b.graph.num_edges());
        }
    }

    #[test]
    fn trivial_queries_short_circuit() {
        let g = sample();
        let same = pre_bfs(&g, VertexId(3), VertexId(3), 4);
        assert!(same.feasible);
        let zero = pre_bfs(&g, VertexId(0), VertexId(9), 0);
        assert!(!zero.feasible);
    }

    #[test]
    fn transfer_bytes_counts_graph_and_barrier() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let expected = prep.graph.byte_size() + prep.barrier.len() * 4 + 16;
        assert_eq!(prep.transfer_bytes(), expected);
    }

    #[test]
    fn translate_path_maps_back_to_original_ids() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let m = prep.mapping.as_ref().unwrap();
        let device_path: Vec<VertexId> =
            [0u32, 1, 2, 9].iter().map(|&v| m.to_new(VertexId(v)).unwrap()).collect();
        assert_eq!(
            prep.translate_path(&device_path),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(9)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = sample();
        pre_bfs(&g, VertexId(99), VertexId(9), 5);
    }
}
