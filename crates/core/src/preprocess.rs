//! Host-side preprocessing.
//!
//! Section V of the paper: before a query is shipped to the device, the host
//! runs **Pre-BFS** — a `(k-1)`-hop bidirectional BFS — to
//!
//! 1. compute `sd(s, ·)` on `G` and `sd(·, t)` on `G_rev`,
//! 2. keep only the vertices with `sd(s,u) + sd(u,t) ≤ k` (Theorem 1),
//! 3. extract the induced subgraph `G'` in CSR form, and
//! 4. send `s`, `t`, `G'` and the *barrier* array `bar[u] = sd(u, t)` to the
//!    device.
//!
//! `(k-1)` hops suffice because the only valid vertices a `k`-hop BFS could
//! additionally discover are `s` and `t` themselves (the paper's second proof
//! in Section V); the implementation force-keeps the two endpoints to cover
//! that corner case.
//!
//! ## Per-query cost: O(touched), not O(|V|)
//!
//! The paper's headline claim covers preprocessing as much as enumeration, so
//! the host side must not spend O(|V| + |E|) per query when the k-hop
//! frontier reaches a few hundred vertices. [`PrepareContext`] is the
//! reusable state that makes repeated preparation output-sensitive:
//!
//! * two epoch-stamped [`BfsScratch`] instances (forward from `s`, backward
//!   from `t` on `G_rev`) whose allocations persist across queries and whose
//!   touched-vertex lists replace full-vertex scans,
//! * a build-once-share-many reverse CSR (`Arc<CsrGraph>`), either installed
//!   by the caller (the host loader already builds one per graph) or computed
//!   lazily on the first query and reused for every subsequent query on the
//!   same graph,
//! * Theorem 1's cut evaluated over the forward frontier only, feeding
//!   `induce_subgraph_from_vertices` so `G'` is built from the kept list.
//!
//! [`pre_bfs_with`] / [`no_prebfs_with`] are the real implementations;
//! [`pre_bfs`] and [`no_prebfs_preprocess`] remain as one-shot wrappers with
//! their original signatures. The module also provides the *no-Pre-BFS*
//! preprocessing used by the ablation in Fig. 12 (barrier from a full k-hop
//! reverse BFS, no subgraph extraction).

use pefp_graph::bfs::{BfsScratch, UNREACHED};
use pefp_graph::delta::GraphSnapshot;
use pefp_graph::induced::{induce_subgraph_from_vertices_with, InducedSubgraph, RemapScratch};
use pefp_graph::view::GraphView;
use pefp_graph::{CsrGraph, VertexId};
use std::sync::Arc;
use std::time::Instant;

/// The set of data-graph vertices a preparation *depended on* — the sound
/// invalidation key for cached [`PreparedQuery`]s under incremental updates.
///
/// For Pre-BFS this is the union of the forward and backward `(k-1)`-hop BFS
/// frontiers plus the endpoints, in **original** graph ids. It is a superset
/// of the pruned subgraph `G'`: Theorem 1 keeps only frontier vertices, but
/// an edge insert `u -> v` with `u` outside the forward frontier and `v`
/// outside the backward frontier can change neither BFS, hence neither `G'`,
/// the barrier, nor the result set — while an insert touching either frontier
/// can (e.g. bridging a forward-reachable dead end to a vertex that reaches
/// `t`, where *neither* endpoint lies in `G'`). Intersecting a delta's
/// touched vertices against this set is therefore conservative and exact
/// enough: every invalidated result intersects it, and `G'` ⊆ touched means
/// every entry whose pruned subgraph meets the delta is evicted too.
///
/// Preparations that ship the whole graph (no-Pre-BFS ablation, trivial
/// queries) depend on everything and use [`TouchedSet::All`].
#[derive(Debug, Clone)]
pub enum TouchedSet {
    /// The preparation read the entire graph; any update invalidates it.
    All,
    /// Sorted, deduplicated original-id vertices the preparation read.
    Vertices(Vec<VertexId>),
}

impl TouchedSet {
    /// Whether any vertex of `sorted` (ascending, deduplicated) is in the set.
    pub fn intersects(&self, sorted: &[VertexId]) -> bool {
        match self {
            TouchedSet::All => true,
            TouchedSet::Vertices(mine) => {
                let (mut i, mut j) = (0usize, 0usize);
                while i < mine.len() && j < sorted.len() {
                    match mine[i].cmp(&sorted[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
        }
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            TouchedSet::All => true,
            TouchedSet::Vertices(mine) => mine.binary_search(&v).is_ok(),
        }
    }
}

/// Everything the device needs to run one query.
///
/// The graph is held behind an `Arc`: the Pre-BFS path shares it with the
/// mapping (one copy of `G'`, not two), and the no-Pre-BFS / trivial paths
/// share the caller's data graph instead of cloning all of `G`.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The graph the device will search (the induced subgraph `G'` for
    /// Pre-BFS, or the full graph for the no-Pre-BFS ablation), with densely
    /// remapped vertex ids.
    pub graph: Arc<CsrGraph>,
    /// Mapping between original and device vertex ids (`None` when the full
    /// graph is used unchanged). Shares its graph with the `graph` field.
    pub mapping: Option<InducedSubgraph>,
    /// Source vertex in device ids.
    pub s: VertexId,
    /// Target vertex in device ids.
    pub t: VertexId,
    /// Hop constraint.
    pub k: u32,
    /// Barrier array: `bar[u] = sd(u, t)` in device ids, clamped to `k + 1`
    /// for vertices that cannot reach `t` within `k` hops.
    pub barrier: Vec<u32>,
    /// `false` when preprocessing already proved the result set is empty
    /// (e.g. `t` unreachable); the device run can then be skipped.
    pub feasible: bool,
    /// Original-id vertices this preparation depended on — the invalidation
    /// key host-side caches intersect against graph-update deltas.
    pub touched: TouchedSet,
    /// Host wall-clock time spent preprocessing, in milliseconds.
    pub host_millis: f64,
}

impl PreparedQuery {
    /// Number of bytes that must be transferred to device DRAM for this query
    /// (CSR arrays + barrier + query parameters), used for the PCIe model.
    pub fn transfer_bytes(&self) -> usize {
        self.graph.byte_size() + self.barrier.len() * 4 + 4 * 4
    }

    /// Translates a path expressed in device ids back to original graph ids.
    pub fn translate_path(&self, path: &[VertexId]) -> Vec<VertexId> {
        match &self.mapping {
            Some(m) => m.translate_path(path),
            None => path.to_vec(),
        }
    }
}

/// Counters describing the work a [`PrepareContext`] has performed; used by
/// tests and benches to verify the O(touched) contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepareStats {
    /// Queries prepared through this context.
    pub queries: u64,
    /// Reverse-CSR constructions paid by this context (0 when the caller
    /// installed a prebuilt reverse). The cache holds one graph's reverse —
    /// the context-per-served-graph design — so this counts one build per
    /// *graph switch*: a context alternating between two graphs rebuilds on
    /// every alternation and wants to be split into one context per graph.
    pub reverse_builds: u64,
    /// Vertices reached by the BFS frontiers of the most recent preparation
    /// (forward + backward for Pre-BFS, endpoints included; backward only
    /// for no-Pre-BFS; 0 for trivial queries, which run no BFS).
    pub last_touched: usize,
}

/// Reusable preprocessing state: BFS scratch, kept-list buffer and the shared
/// reverse CSR for the graph currently being served.
///
/// One context per worker thread; it is deliberately `!Sync`-free (plain owned
/// buffers), so batch runners hand each thread its own.
#[derive(Debug, Default)]
pub struct PrepareContext {
    forward: BfsScratch,
    backward: BfsScratch,
    remap: RemapScratch,
    reverse: Option<(Arc<CsrGraph>, Arc<CsrGraph>)>,
    stats: PrepareStats,
}

impl PrepareContext {
    /// A fresh context with empty scratch buffers.
    pub fn new() -> Self {
        PrepareContext::default()
    }

    /// A context that already knows the reverse CSR of `g` — the host loader
    /// builds one per loaded graph; wiring it here means no query ever pays
    /// for `g.reverse()` again.
    pub fn with_reverse(g: &Arc<CsrGraph>, reverse: Arc<CsrGraph>) -> Self {
        let mut ctx = PrepareContext::new();
        ctx.install_reverse(g, reverse);
        ctx
    }

    /// Installs (or replaces) the shared reverse CSR for `g`. A no-op when
    /// the same graph's reverse is already installed.
    pub fn install_reverse(&mut self, g: &Arc<CsrGraph>, reverse: Arc<CsrGraph>) {
        debug_assert_eq!(g.num_vertices(), reverse.num_vertices());
        if !matches!(&self.reverse, Some((cached, _)) if Arc::ptr_eq(cached, g)) {
            self.reverse = Some((Arc::clone(g), reverse));
        }
    }

    /// The reverse CSR for `g`: the installed/cached one when it matches,
    /// otherwise computed once and cached for subsequent queries.
    fn reverse_for(&mut self, g: &Arc<CsrGraph>) -> Arc<CsrGraph> {
        if let Some((cached, rev)) = &self.reverse {
            if Arc::ptr_eq(cached, g) {
                return Arc::clone(rev);
            }
        }
        let rev = Arc::new(g.reverse());
        self.stats.reverse_builds += 1;
        self.reverse = Some((Arc::clone(g), Arc::clone(&rev)));
        rev
    }

    /// Work counters accumulated by this context.
    pub fn stats(&self) -> PrepareStats {
        self.stats
    }
}

/// Pre-BFS preprocessing (the paper's Algorithm in Section V) against a
/// reusable [`PrepareContext`]; cost is proportional to the BFS frontier.
pub fn pre_bfs_with(
    ctx: &mut PrepareContext,
    g: &Arc<CsrGraph>,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> PreparedQuery {
    let start = Instant::now();
    assert!(s.index() < g.num_vertices(), "source {s} out of range");
    assert!(t.index() < g.num_vertices(), "target {t} out of range");
    ctx.stats.queries += 1;

    // Degenerate hop budgets: k = 0 only ever admits the trivial s == t path.
    if k == 0 || s == t {
        ctx.stats.last_touched = 0;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(Arc::clone(g), s, t, k, elapsed);
    }
    let rev = ctx.reverse_for(g);
    pre_bfs_core(ctx, g, &rev, s, t, k, start)
}

/// Pre-BFS preprocessing (the paper's Algorithm in Section V), one-shot form:
/// allocates fresh scratch and recomputes the reverse CSR. Kept for callers
/// that prepare a single query; batch and server workloads should reuse a
/// [`PrepareContext`] via [`pre_bfs_with`].
pub fn pre_bfs(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> PreparedQuery {
    let start = Instant::now();
    assert!(s.index() < g.num_vertices(), "source {s} out of range");
    assert!(t.index() < g.num_vertices(), "target {t} out of range");

    if k == 0 || s == t {
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(Arc::new(g.clone()), s, t, k, elapsed);
    }
    let mut ctx = PrepareContext::new();
    ctx.stats.queries += 1;
    let rev = g.reverse();
    pre_bfs_core(&mut ctx, g, &rev, s, t, k, start)
}

/// Shared non-trivial Pre-BFS implementation. Touches only the vertices the
/// two bounded BFS frontiers reach: the Theorem 1 cut iterates the forward
/// frontier (every kept vertex other than the force-kept endpoints has a
/// finite `sd(s, ·)`), and the subgraph is induced from the kept list.
fn pre_bfs_core<GF, GR>(
    ctx: &mut PrepareContext,
    g: &GF,
    rev: &GR,
    s: VertexId,
    t: VertexId,
    k: u32,
    start: Instant,
) -> PreparedQuery
where
    GF: GraphView + ?Sized,
    GR: GraphView + ?Sized,
{
    // (k-1)-hop bidirectional BFS.
    let bound = k - 1;
    ctx.forward.run(g, s, bound);
    ctx.backward.run(rev, t, bound);
    ctx.stats.last_touched = ctx.forward.touched_len() + ctx.backward.touched_len();

    // Theorem 1 cut, with s and t force-kept (they are the only valid vertices
    // a k-hop BFS could still add). `induce_subgraph_from_vertices` sorts and
    // deduplicates, so the kept order matches the old full-scan extraction.
    let mut kept: Vec<VertexId> = Vec::with_capacity(ctx.forward.touched_len() + 2);
    kept.push(s);
    kept.push(t);
    for &u in ctx.forward.touched() {
        if u == s || u == t {
            continue;
        }
        let b = ctx.backward.dist(u);
        if b != UNREACHED && ctx.forward.dist(u) + b <= k {
            kept.push(u);
        }
    }
    let mapping = induce_subgraph_from_vertices_with(&mut ctx.remap, g, kept);

    let new_s = mapping.to_new(s).expect("s is force-kept");
    let new_t = mapping.to_new(t).expect("t is force-kept");

    // Barrier in the new id space: sd(u, t) clamped to k + 1. For vertices
    // whose distance was not discovered by the (k-1)-hop reverse BFS the true
    // distance is at least k, which only matters for s (see module docs); the
    // barrier check never reads bar[s], so the clamp is harmless.
    let barrier: Vec<u32> = mapping
        .old_of_new
        .iter()
        .map(|&old| {
            let d = ctx.backward.dist(old);
            if d == UNREACHED || d > k {
                k + 1
            } else {
                d
            }
        })
        .collect();

    // Feasible iff t is reachable from s within k hops: either the BFS saw it
    // directly, or (distance exactly k) both frontiers meet.
    let feasible = ctx.forward.dist(t) != UNREACHED
        || g.successors(s)
            .iter()
            .any(|&v| v == t || (ctx.backward.dist(v) != UNREACHED && ctx.backward.dist(v) < k));

    // The dependency set for incremental invalidation: both frontiers plus
    // the force-kept endpoints, in original ids.
    let mut touched: Vec<VertexId> =
        Vec::with_capacity(ctx.forward.touched_len() + ctx.backward.touched_len() + 2);
    touched.push(s);
    touched.push(t);
    touched.extend_from_slice(ctx.forward.touched());
    touched.extend_from_slice(ctx.backward.touched());
    touched.sort_unstable();
    touched.dedup();

    let host_millis = start.elapsed().as_secs_f64() * 1e3;
    PreparedQuery {
        graph: Arc::clone(&mapping.graph),
        s: new_s,
        t: new_t,
        k,
        barrier,
        feasible,
        touched: TouchedSet::Vertices(touched),
        mapping: Some(mapping),
        host_millis,
    }
}

/// Preprocessing for the PEFP-No-Pre-BFS ablation (Fig. 12) against a
/// reusable [`PrepareContext`]: the device receives the *full* graph (shared,
/// not cloned); only the barrier array is computed (k-hop BFS from `t` on the
/// reverse graph), because the barrier check is part of the core algorithm
/// rather than of the Pre-BFS optimisation.
pub fn no_prebfs_with(
    ctx: &mut PrepareContext,
    g: &Arc<CsrGraph>,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> PreparedQuery {
    let start = Instant::now();
    assert!(s.index() < g.num_vertices(), "source {s} out of range");
    assert!(t.index() < g.num_vertices(), "target {t} out of range");
    ctx.stats.queries += 1;
    if k == 0 || s == t {
        ctx.stats.last_touched = 0;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(Arc::clone(g), s, t, k, elapsed);
    }
    let rev = ctx.reverse_for(g);
    ctx.backward.run(&rev, t, k);
    ctx.stats.last_touched = ctx.backward.touched_len();

    // The ablation ships a full-length barrier by design; fill the clamp
    // default and overwrite only the reached vertices.
    let mut barrier = vec![k + 1; g.num_vertices()];
    for &v in ctx.backward.touched() {
        barrier[v.index()] = ctx.backward.dist(v);
    }
    let feasible = barrier[s.index()] <= k;
    let host_millis = start.elapsed().as_secs_f64() * 1e3;
    PreparedQuery {
        graph: Arc::clone(g),
        mapping: None,
        s,
        t,
        k,
        barrier,
        feasible,
        touched: TouchedSet::All,
        host_millis,
    }
}

/// One-shot form of [`no_prebfs_with`] with the original borrowed-graph
/// signature; clones `g` once into shared ownership (the ablation ships the
/// full graph, so that copy existed before the context API too).
pub fn no_prebfs_preprocess(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> PreparedQuery {
    no_prebfs_with(&mut PrepareContext::new(), &Arc::new(g.clone()), s, t, k)
}

/// Pre-BFS preprocessing against an epoch-versioned [`GraphSnapshot`]: the
/// bidirectional BFS and the induced-subgraph extraction traverse the
/// snapshot's copy-on-write overlay directly (both directions are first-class
/// views), so no full CSR is ever materialised on this path. The produced
/// `G'` is a fresh dense CSR either way, so the device side is oblivious to
/// where the preparation read from.
pub fn pre_bfs_snapshot_with(
    ctx: &mut PrepareContext,
    snapshot: &GraphSnapshot,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> PreparedQuery {
    let start = Instant::now();
    let n = snapshot.num_vertices();
    assert!(s.index() < n, "source {s} out of range");
    assert!(t.index() < n, "target {t} out of range");
    ctx.stats.queries += 1;
    if k == 0 || s == t {
        ctx.stats.last_touched = 0;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(snapshot.full_csr(), s, t, k, elapsed);
    }
    pre_bfs_core(ctx, &snapshot.forward(), &snapshot.reverse(), s, t, k, start)
}

/// No-Pre-BFS preprocessing against an epoch-versioned [`GraphSnapshot`].
/// The ablation ships the whole graph, so this path materialises the
/// snapshot once via [`GraphSnapshot::full_csr`] (cached per snapshot — the
/// cost is paid once per epoch, not per query); the barrier BFS still runs
/// over the overlay view.
pub fn no_prebfs_snapshot_with(
    ctx: &mut PrepareContext,
    snapshot: &GraphSnapshot,
    s: VertexId,
    t: VertexId,
    k: u32,
) -> PreparedQuery {
    let start = Instant::now();
    let n = snapshot.num_vertices();
    assert!(s.index() < n, "source {s} out of range");
    assert!(t.index() < n, "target {t} out of range");
    ctx.stats.queries += 1;
    if k == 0 || s == t {
        ctx.stats.last_touched = 0;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        return trivial_prepared(snapshot.full_csr(), s, t, k, elapsed);
    }
    ctx.backward.run(&snapshot.reverse(), t, k);
    ctx.stats.last_touched = ctx.backward.touched_len();
    let mut barrier = vec![k + 1; n];
    for &v in ctx.backward.touched() {
        barrier[v.index()] = ctx.backward.dist(v);
    }
    let feasible = barrier[s.index()] <= k;
    let host_millis = start.elapsed().as_secs_f64() * 1e3;
    PreparedQuery {
        graph: snapshot.full_csr(),
        mapping: None,
        s,
        t,
        k,
        barrier,
        feasible,
        touched: TouchedSet::All,
        host_millis,
    }
}

/// Shared handling of `k == 0` and `s == t`.
fn trivial_prepared(
    graph: Arc<CsrGraph>,
    s: VertexId,
    t: VertexId,
    k: u32,
    host_millis: f64,
) -> PreparedQuery {
    let barrier = vec![k + 1; graph.num_vertices()];
    PreparedQuery {
        graph,
        mapping: None,
        s,
        t,
        k,
        barrier,
        feasible: s == t,
        touched: TouchedSet::All,
        host_millis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::generators::chung_lu;

    fn sample() -> CsrGraph {
        // The Fig. 3 example in miniature: a short s->t corridor plus a bundle
        // of vertices reachable from s that can never reach t.
        CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 9), // corridor 0 -> 1 -> 2 -> 9 (t)
                (0, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8), // dead-end tail
            ],
        )
    }

    #[test]
    fn prebfs_removes_vertices_that_cannot_reach_t() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        assert!(prep.feasible);
        // Only the corridor 0,1,2,9 can satisfy sds + sdt <= 5.
        assert_eq!(prep.graph.num_vertices(), 4);
        let mapping = prep.mapping.as_ref().unwrap();
        for dead in 3..=8u32 {
            assert_eq!(mapping.to_new(VertexId(dead)), None);
        }
    }

    #[test]
    fn barrier_equals_distance_to_t_in_new_ids() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let mapping = prep.mapping.as_ref().unwrap();
        let new2 = mapping.to_new(VertexId(2)).unwrap();
        assert_eq!(prep.barrier[new2.index()], 1);
        assert_eq!(prep.barrier[prep.t.index()], 0);
    }

    #[test]
    fn exact_distance_k_keeps_the_endpoints() {
        // Chain of length 4; k = 4 means sd(s, t) == k exactly.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let prep = pre_bfs(&g, VertexId(0), VertexId(4), 4);
        assert!(prep.feasible);
        assert_eq!(prep.graph.num_vertices(), 5);
        // s itself is outside the (k-1)-hop reverse frontier, so its barrier is
        // clamped to k + 1; that slot is never read by the barrier check.
        assert_eq!(prep.barrier[prep.s.index()], 5);
    }

    #[test]
    fn infeasible_query_is_detected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let prep = pre_bfs(&g, VertexId(0), VertexId(3), 6);
        assert!(!prep.feasible);
    }

    #[test]
    fn no_prebfs_keeps_the_whole_graph() {
        let g = sample();
        let prep = no_prebfs_preprocess(&g, VertexId(0), VertexId(9), 5);
        assert_eq!(prep.graph.num_vertices(), g.num_vertices());
        assert!(prep.mapping.is_none());
        assert_eq!(prep.barrier[9], 0);
        assert_eq!(prep.barrier[2], 1);
        assert_eq!(prep.barrier[8], 6); // cannot reach t -> clamped to k + 1
    }

    #[test]
    fn prebfs_subgraph_is_never_larger_than_no_prebfs() {
        let g = chung_lu(300, 6.0, 2.2, 5).to_csr();
        for &(s, t, k) in &[(0u32, 100u32, 4u32), (5, 200, 5), (10, 20, 3)] {
            let a = pre_bfs(&g, VertexId(s), VertexId(t), k);
            let b = no_prebfs_preprocess(&g, VertexId(s), VertexId(t), k);
            assert!(a.graph.num_vertices() <= b.graph.num_vertices());
            assert!(a.graph.num_edges() <= b.graph.num_edges());
        }
    }

    #[test]
    fn trivial_queries_short_circuit() {
        let g = sample();
        let same = pre_bfs(&g, VertexId(3), VertexId(3), 4);
        assert!(same.feasible);
        let zero = pre_bfs(&g, VertexId(0), VertexId(9), 0);
        assert!(!zero.feasible);
    }

    #[test]
    fn transfer_bytes_counts_graph_and_barrier() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let expected = prep.graph.byte_size() + prep.barrier.len() * 4 + 16;
        assert_eq!(prep.transfer_bytes(), expected);
    }

    #[test]
    fn translate_path_maps_back_to_original_ids() {
        let g = sample();
        let prep = pre_bfs(&g, VertexId(0), VertexId(9), 5);
        let m = prep.mapping.as_ref().unwrap();
        let device_path: Vec<VertexId> =
            [0u32, 1, 2, 9].iter().map(|&v| m.to_new(VertexId(v)).unwrap()).collect();
        assert_eq!(
            prep.translate_path(&device_path),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(9)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = sample();
        pre_bfs(&g, VertexId(99), VertexId(9), 5);
    }

    #[test]
    fn reused_context_matches_one_shot_across_queries() {
        let g = Arc::new(chung_lu(400, 6.0, 2.2, 7).to_csr());
        let mut ctx = PrepareContext::new();
        for &(s, t, k) in
            &[(0u32, 200u32, 4u32), (3, 17, 5), (250, 9, 3), (0, 200, 4), (5, 5, 4), (1, 2, 0)]
        {
            let with_ctx = pre_bfs_with(&mut ctx, &g, VertexId(s), VertexId(t), k);
            let one_shot = pre_bfs(&g, VertexId(s), VertexId(t), k);
            assert_eq!(with_ctx.graph, one_shot.graph, "query ({s},{t},{k})");
            assert_eq!(with_ctx.barrier, one_shot.barrier);
            assert_eq!(with_ctx.feasible, one_shot.feasible);
            assert_eq!((with_ctx.s, with_ctx.t, with_ctx.k), (one_shot.s, one_shot.t, one_shot.k));
        }
        assert_eq!(ctx.stats().queries, 6);
        assert_eq!(ctx.stats().reverse_builds, 1, "reverse CSR must be built once, not per query");
    }

    #[test]
    fn context_reuses_an_installed_reverse() {
        let g = Arc::new(sample());
        let rev = Arc::new(g.reverse());
        let mut ctx = PrepareContext::with_reverse(&g, rev);
        for _ in 0..3 {
            let prep = pre_bfs_with(&mut ctx, &g, VertexId(0), VertexId(9), 5);
            assert!(prep.feasible);
        }
        assert_eq!(ctx.stats().reverse_builds, 0, "installed reverse must be reused");
    }

    #[test]
    fn context_rebuilds_reverse_when_the_graph_changes() {
        let a = Arc::new(sample());
        let b = Arc::new(CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        let mut ctx = PrepareContext::new();
        pre_bfs_with(&mut ctx, &a, VertexId(0), VertexId(9), 5);
        pre_bfs_with(&mut ctx, &b, VertexId(0), VertexId(3), 4);
        pre_bfs_with(&mut ctx, &b, VertexId(1), VertexId(3), 4);
        assert_eq!(ctx.stats().reverse_builds, 2, "one build per distinct graph");
    }

    #[test]
    fn shared_paths_do_not_clone_the_data_graph() {
        let g = Arc::new(chung_lu(500, 5.0, 2.2, 11).to_csr());
        let mut ctx = PrepareContext::new();
        // No-Pre-BFS ships the full graph: it must be the same allocation.
        let no_prebfs = no_prebfs_with(&mut ctx, &g, VertexId(0), VertexId(250), 4);
        assert!(Arc::ptr_eq(&no_prebfs.graph, &g));
        // Trivial queries share the data graph too.
        let trivial = pre_bfs_with(&mut ctx, &g, VertexId(7), VertexId(7), 4);
        assert!(Arc::ptr_eq(&trivial.graph, &g));
        // Pre-BFS stores G' exactly once: the query and its mapping share it.
        let full = pre_bfs_with(&mut ctx, &g, VertexId(0), VertexId(250), 4);
        let mapping = full.mapping.as_ref().unwrap();
        assert!(Arc::ptr_eq(&full.graph, &mapping.graph));
    }
}
