//! Walk counting and result-size estimation.
//!
//! Counting s-t *simple* paths is #P-hard (Section II-A of the paper), but
//! counting s-t *walks* of bounded length is a cheap dynamic program over the
//! adjacency structure, and the walk count is an upper bound on the simple
//! path count. The reproduction uses these bounds in two places:
//!
//! * the experiment harness skips `(dataset, k)` points whose estimated result
//!   volume exceeds its budget — the analogue of the paper's 10,000-second
//!   `INF` cutoff;
//! * the host-side planner sizes the device buffer areas from the predicted
//!   intermediate-path volume before launching the kernel.
//!
//! For small inputs an exact simple-path counter (bounded DFS that counts
//! without materialising) is also provided; it is the correctness oracle for
//! the estimators and for the enumeration engines' `num_paths`.

use pefp_graph::{CsrGraph, VertexId};

/// Number of walks (vertex repetitions allowed) from `s` to `t` with at most
/// `k` hops, saturating at `u64::MAX`.
///
/// This is an upper bound on the number of s-t k-paths; it is exact on DAGs
/// (where every walk is a simple path).
pub fn count_st_walks(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> u64 {
    count_st_walks_checked(g, s, t, k).0
}

/// Like [`count_st_walks`], but also reports whether any addition saturated.
///
/// A saturated count is still a valid upper bound, but it is no longer a
/// *ranking* signal: two astronomically different workloads both report
/// `u64::MAX`. Callers that compare estimates (the engine router) must treat
/// the flag as "beyond CPU scale" rather than trusting the magnitude.
pub fn count_st_walks_checked(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> (u64, bool) {
    let (profile, mut saturated) = walk_profile_checked(g, s, t, k);
    let total = profile.iter().fold(0u64, |acc, &c| sat_add(acc, c, &mut saturated));
    (total, saturated)
}

/// Saturating addition that records whether it actually saturated.
fn sat_add(a: u64, b: u64, saturated: &mut bool) -> u64 {
    match a.checked_add(b) {
        Some(v) => v,
        None => {
            *saturated = true;
            u64::MAX
        }
    }
}

/// Number of walks from `s` to `t` of *exactly* `h` hops, for every
/// `h` in `0..=k` (index `h` of the returned vector).
///
/// The dynamic program keeps one `u64` per vertex per frontier and saturates
/// instead of overflowing, so it is safe to call with large `k` on dense
/// graphs.
pub fn walk_profile(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<u64> {
    walk_profile_checked(g, s, t, k).0
}

/// Like [`walk_profile`], but also reports whether any per-vertex counter
/// saturated — once a counter pins at `u64::MAX`, every downstream value is a
/// floor, not an exact walk count.
pub fn walk_profile_checked(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> (Vec<u64>, bool) {
    let n = g.num_vertices();
    let mut profile = vec![0u64; k as usize + 1];
    let mut saturated = false;
    if n == 0 || s.index() >= n || t.index() >= n {
        return (profile, saturated);
    }
    let mut current = vec![0u64; n];
    current[s.index()] = 1;
    profile[0] = if s == t { 1 } else { 0 };
    let mut next = vec![0u64; n];
    for p in profile.iter_mut().skip(1) {
        next.iter_mut().for_each(|c| *c = 0);
        for (v, &c) in current.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for &w in g.successors(VertexId::from_index(v)) {
                let slot = &mut next[w.index()];
                *slot = sat_add(*slot, c, &mut saturated);
            }
        }
        *p = next[t.index()];
        std::mem::swap(&mut current, &mut next);
    }
    (profile, saturated)
}

/// Total number of walks of length at most `k` starting at `s` (an upper
/// bound on the number of intermediate paths the BFS-style engine can ever
/// hold for this query), saturating at `u64::MAX`.
pub fn count_walks_from(g: &CsrGraph, s: VertexId, k: u32) -> u64 {
    count_walks_from_checked(g, s, k).0
}

/// Like [`count_walks_from`], but also reports whether any addition
/// saturated along the way.
pub fn count_walks_from_checked(g: &CsrGraph, s: VertexId, k: u32) -> (u64, bool) {
    let n = g.num_vertices();
    let mut saturated = false;
    if n == 0 || s.index() >= n {
        return (0, saturated);
    }
    let mut current = vec![0u64; n];
    current[s.index()] = 1;
    let mut total: u64 = 1;
    let mut next = vec![0u64; n];
    for _ in 1..=k {
        next.iter_mut().for_each(|c| *c = 0);
        let mut frontier_total: u64 = 0;
        for (v, &c) in current.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for &w in g.successors(VertexId::from_index(v)) {
                let slot = &mut next[w.index()];
                *slot = sat_add(*slot, c, &mut saturated);
            }
        }
        for &c in next.iter() {
            frontier_total = sat_add(frontier_total, c, &mut saturated);
        }
        total = sat_add(total, frontier_total, &mut saturated);
        if frontier_total == 0 {
            break;
        }
        std::mem::swap(&mut current, &mut next);
    }
    (total, saturated)
}

/// Exact number of s-t simple paths with at most `k` hops, computed by a
/// bounded DFS that counts without materialising any path.
///
/// Exponential in the worst case — intended for tests, small graphs and as
/// the ground truth the estimators are validated against.
pub fn count_simple_paths(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> u64 {
    let n = g.num_vertices();
    if n == 0 || s.index() >= n || t.index() >= n {
        return 0;
    }
    let mut visited = vec![false; n];
    visited[s.index()] = true;
    let mut count = 0u64;
    dfs_count(g, s, t, k, &mut visited, &mut count);
    count
}

fn dfs_count(
    g: &CsrGraph,
    current: VertexId,
    t: VertexId,
    remaining: u32,
    visited: &mut [bool],
    count: &mut u64,
) {
    if current == t {
        *count += 1;
        // The target may still be an interior vertex of a longer path only if
        // it were allowed to repeat — it is not (simple paths), so stop here.
        return;
    }
    if remaining == 0 {
        return;
    }
    for &next in g.successors(current) {
        if !visited[next.index()] {
            visited[next.index()] = true;
            dfs_count(g, next, t, remaining - 1, visited, count);
            visited[next.index()] = false;
        }
    }
}

/// A cheap, conservative estimate of the volume of work one query implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEstimate {
    /// Upper bound on the number of result paths (s-t walk count).
    pub max_results: u64,
    /// Upper bound on the number of intermediate paths generated during
    /// BFS-style expansion (walks of any length ≤ k from `s`).
    pub max_intermediate_paths: u64,
    /// Whether either counter saturated at `u64::MAX`. A saturated estimate
    /// is still an upper bound, but its *magnitude* carries no ranking
    /// information — all overflowing workloads collapse to the same value, so
    /// cost models must treat the flag, not the number, as the signal.
    pub saturated: bool,
}

impl QueryEstimate {
    /// Estimates `(s, t, k)` on `g` — typically the *pruned* graph produced by
    /// Pre-BFS, where the bounds are dramatically tighter than on the
    /// original graph.
    pub fn compute(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> QueryEstimate {
        let (max_results, results_saturated) = count_st_walks_checked(g, s, t, k);
        let (max_intermediate_paths, walks_saturated) = count_walks_from_checked(g, s, k);
        QueryEstimate {
            max_results,
            max_intermediate_paths,
            saturated: results_saturated || walks_saturated,
        }
    }

    /// Whether the estimate exceeds a result budget (the `INF` cutoff used by
    /// the experiment harness).
    pub fn exceeds(&self, max_results: u64) -> bool {
        self.max_results > max_results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn diamond_has_two_paths_counted_exactly() {
        let g = diamond();
        assert_eq!(count_simple_paths(&g, vid(0), vid(3), 2), 2);
        assert_eq!(count_simple_paths(&g, vid(0), vid(3), 1), 0);
        assert_eq!(count_st_walks(&g, vid(0), vid(3), 2), 2);
    }

    #[test]
    fn walk_profile_matches_hand_computed_values() {
        let g = diamond();
        let profile = walk_profile(&g, vid(0), vid(3), 3);
        assert_eq!(profile, vec![0, 0, 2, 0]);
        // s == t contributes the empty walk at h = 0.
        let self_profile = walk_profile(&g, vid(0), vid(0), 2);
        assert_eq!(self_profile[0], 1);
    }

    #[test]
    fn walks_upper_bound_simple_paths_on_cyclic_graphs() {
        // Triangle 0->1->2->0 plus 2->3: walks can loop, simple paths cannot.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let k = 8;
        let walks = count_st_walks(&g, vid(0), vid(3), k);
        let simple = count_simple_paths(&g, vid(0), vid(3), k);
        assert_eq!(simple, 1);
        assert!(walks > simple);
    }

    #[test]
    fn walk_count_equals_simple_count_on_dags() {
        // Layered DAG: 0 -> {1,2} -> {3,4} -> 5.
        let g = CsrGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 5), (4, 5)],
        );
        for k in 0..=5 {
            assert_eq!(
                count_st_walks(&g, vid(0), vid(5), k),
                count_simple_paths(&g, vid(0), vid(5), k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn exact_count_agrees_with_the_naive_enumerator() {
        let g = chung_lu(120, 4.0, 2.2, 21).to_csr();
        let s = vid(0);
        let t = vid(60);
        for k in 1..=4 {
            let enumerated = naive_dfs_enumerate(&g, s, t, k).len() as u64;
            assert_eq!(count_simple_paths(&g, s, t, k), enumerated, "k = {k}");
            assert!(count_st_walks(&g, s, t, k) >= enumerated);
        }
    }

    #[test]
    fn count_walks_from_includes_the_trivial_walk() {
        let g = diamond();
        assert_eq!(count_walks_from(&g, vid(3), 5), 1, "sink has only the empty walk");
        // From 0 with k=1: {0}, {0,1}, {0,2} = 3.
        assert_eq!(count_walks_from(&g, vid(0), 1), 3);
        // k=2 adds {0,1,3}, {0,2,3}.
        assert_eq!(count_walks_from(&g, vid(0), 2), 5);
    }

    #[test]
    fn saturation_prevents_overflow_on_dense_cycles() {
        // Complete directed graph on 12 vertices, k = 40: astronomically many
        // walks. The counter must saturate, not overflow or hang.
        let mut edges = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = CsrGraph::from_edges(12, &edges);
        let walks = count_st_walks(&g, vid(0), vid(1), 30);
        assert!(walks > 1u64 << 60);
        let (checked, saturated) = count_st_walks_checked(&g, vid(0), vid(1), 30);
        assert_eq!(checked, walks);
        assert!(saturated, "a complete K12 at k=30 must overflow u64");
        let est = QueryEstimate::compute(&g, vid(0), vid(1), 30);
        assert!(est.saturated);
    }

    #[test]
    fn small_workloads_never_report_saturation() {
        let g = chung_lu(150, 5.0, 2.2, 33).to_csr();
        let est = QueryEstimate::compute(&g, vid(1), vid(75), 4);
        assert!(!est.saturated);
        let (_, saturated) = count_walks_from_checked(&g, vid(1), 4);
        assert!(!saturated);
    }

    #[test]
    fn out_of_range_vertices_yield_zero() {
        let g = diamond();
        assert_eq!(count_st_walks(&g, vid(9), vid(3), 3), 0);
        assert_eq!(count_simple_paths(&g, vid(0), vid(9), 3), 0);
        assert_eq!(count_walks_from(&g, vid(9), 3), 0);
        let empty = CsrGraph::empty(0);
        assert_eq!(count_st_walks(&empty, vid(0), vid(0), 3), 0);
    }

    #[test]
    fn query_estimate_bounds_the_real_engine_workload() {
        let g = chung_lu(150, 5.0, 2.2, 33).to_csr();
        let s = vid(1);
        let t = vid(75);
        let k = 4;
        let est = QueryEstimate::compute(&g, s, t, k);
        let exact = count_simple_paths(&g, s, t, k);
        assert!(est.max_results >= exact);
        assert!(est.max_intermediate_paths >= est.max_results);
        assert!(est.exceeds(0) || est.max_results == 0);
        assert!(!est.exceeds(u64::MAX));
    }
}
