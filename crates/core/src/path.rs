//! Fixed-width intermediate path storage.
//!
//! On the FPGA an intermediate path occupies a fixed-width row of BRAM (the
//! hop constraint bounds the number of vertices), together with the *neighbour
//! pointers* that Batch-DFS uses to split a high-degree vertex's expansion
//! across several batches (Algorithm 4 of the paper). [`TempPath`] mirrors
//! that layout: an inline vertex array plus a cursor window into the CSR edge
//! array, with no heap allocation in the hot loop.

use pefp_graph::{CsrGraph, VertexId};

/// Maximum supported hop constraint.
///
/// The paper evaluates `k ≤ 13`; 30 leaves generous headroom while keeping a
/// path row at 128 bytes of vertex payload (the fixed BRAM row width).
pub const MAX_K: usize = 30;

/// A partial path held in the buffer/processing area or spilled to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempPath {
    /// Number of vertices currently on the path (`1..=MAX_K + 1`).
    len: u8,
    /// Inline vertex storage; slots `len..` are unspecified.
    vertices: [VertexId; MAX_K + 1],
    /// Next unconsumed successor of the last vertex, as an index into the CSR
    /// edge array ("end neighbour pointer" in Algorithm 4).
    nbr_next: u32,
    /// End of the successor window this copy is allowed to expand
    /// ("last neighbour pointer" for buffer-resident paths, the batch window
    /// end for processing-area copies).
    nbr_end: u32,
}

impl TempPath {
    /// Creates the initial single-vertex path `{s}` with the full successor
    /// range of `s`.
    pub fn initial(g: &CsrGraph, s: VertexId) -> Self {
        let range = g.neighbor_range(s);
        let mut vertices = [VertexId::INVALID; MAX_K + 1];
        vertices[0] = s;
        TempPath { len: 1, vertices, nbr_next: range.start, nbr_end: range.end }
    }

    /// Extends this path with successor `v`, giving the new path the full
    /// successor range of `v`.
    ///
    /// # Panics
    ///
    /// Panics if the path already holds `MAX_K + 1` vertices.
    pub fn extended(&self, g: &CsrGraph, v: VertexId) -> Self {
        assert!((self.len as usize) < MAX_K + 1, "path exceeds MAX_K = {MAX_K} hops");
        let mut next = *self;
        next.vertices[next.len as usize] = v;
        next.len += 1;
        let range = g.neighbor_range(v);
        next.nbr_next = range.start;
        next.nbr_end = range.end;
        next
    }

    /// Number of vertices on the path.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.len as usize
    }

    /// Number of hops (`len(p)` in the paper's notation).
    #[inline]
    pub fn hops(&self) -> u32 {
        (self.len - 1) as u32
    }

    /// The last vertex of the path.
    #[inline]
    pub fn last(&self) -> VertexId {
        self.vertices[(self.len - 1) as usize]
    }

    /// The vertex sequence of the path.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices[..self.len as usize]
    }

    /// Whether `v` already appears on the path (the *visited check*). The loop
    /// has a constant bound (`MAX_K + 1`), which is what allows the FPGA
    /// design to unroll it into parallel comparators.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices().contains(&v)
    }

    /// Materialises the path as an owned `Vec` (for result emission).
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.vertices().to_vec()
    }

    /// Current successor-window start (CSR edge index).
    #[inline]
    pub fn window_start(&self) -> u32 {
        self.nbr_next
    }

    /// Current successor-window end (CSR edge index, exclusive).
    #[inline]
    pub fn window_end(&self) -> u32 {
        self.nbr_end
    }

    /// Number of successors still assigned to this copy.
    #[inline]
    pub fn window_len(&self) -> u32 {
        self.nbr_end - self.nbr_next
    }

    /// Whether every successor of the last vertex has been handed out.
    #[inline]
    pub fn window_exhausted(&self) -> bool {
        self.nbr_next >= self.nbr_end
    }

    /// Splits off a window of at most `quota` successors for the processing
    /// area and advances this path's cursor past it (Algorithm 4, lines 5–12).
    ///
    /// Returns the processing-area copy, or `None` when the window is empty.
    pub fn take_window(&mut self, quota: u32) -> Option<TempPath> {
        if self.window_exhausted() || quota == 0 {
            return None;
        }
        let take = quota.min(self.window_len());
        let mut batch_copy = *self;
        batch_copy.nbr_end = self.nbr_next + take;
        self.nbr_next += take;
        Some(batch_copy)
    }

    /// Size of this path in 32-bit words as stored on the device: the vertex
    /// payload, a length word and the two neighbour pointers.
    pub fn words(&self) -> u64 {
        self.len as u64 + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::CsrGraph;

    fn graph() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4)])
    }

    #[test]
    fn initial_path_has_the_full_window_of_s() {
        let g = graph();
        let p = TempPath::initial(&g, VertexId(0));
        assert_eq!(p.num_vertices(), 1);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.last(), VertexId(0));
        assert_eq!(p.window_len(), 3);
        assert_eq!(p.vertices(), &[VertexId(0)]);
    }

    #[test]
    fn extension_appends_and_switches_the_window() {
        let g = graph();
        let p = TempPath::initial(&g, VertexId(0));
        let q = p.extended(&g, VertexId(1));
        assert_eq!(q.hops(), 1);
        assert_eq!(q.last(), VertexId(1));
        assert_eq!(q.vertices(), &[VertexId(0), VertexId(1)]);
        assert_eq!(q.window_len(), 1); // vertex 1 has a single successor
                                       // The original is unchanged (value semantics).
        assert_eq!(p.window_len(), 3);
    }

    #[test]
    fn contains_checks_the_whole_prefix() {
        let g = graph();
        let p = TempPath::initial(&g, VertexId(0)).extended(&g, VertexId(2));
        assert!(p.contains(VertexId(0)));
        assert!(p.contains(VertexId(2)));
        assert!(!p.contains(VertexId(4)));
    }

    #[test]
    fn take_window_splits_a_super_node() {
        let g = graph();
        let mut p = TempPath::initial(&g, VertexId(0));
        let first = p.take_window(2).expect("window available");
        assert_eq!(first.window_len(), 2);
        assert_eq!(p.window_len(), 1);
        let second = p.take_window(2).expect("remainder available");
        assert_eq!(second.window_len(), 1);
        assert!(p.window_exhausted());
        assert!(p.take_window(2).is_none());
        // Together the two windows cover the original range without overlap.
        assert_eq!(first.window_end(), second.window_start());
    }

    #[test]
    fn zero_quota_takes_nothing() {
        let g = graph();
        let mut p = TempPath::initial(&g, VertexId(0));
        assert!(p.take_window(0).is_none());
        assert_eq!(p.window_len(), 3);
    }

    #[test]
    fn words_accounts_for_payload_and_pointers() {
        let g = graph();
        let p = TempPath::initial(&g, VertexId(0));
        assert_eq!(p.words(), 4);
        assert_eq!(p.extended(&g, VertexId(1)).words(), 5);
    }

    #[test]
    fn to_vec_round_trips() {
        let g = graph();
        let p =
            TempPath::initial(&g, VertexId(0)).extended(&g, VertexId(1)).extended(&g, VertexId(4));
        assert_eq!(p.to_vec(), vec![VertexId(0), VertexId(1), VertexId(4)]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_K")]
    fn overlong_paths_are_rejected() {
        let n = MAX_K + 3;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n, &edges);
        let mut p = TempPath::initial(&g, VertexId(0));
        for i in 1..n as u32 {
            p = p.extended(&g, VertexId(i));
        }
    }
}
