//! Batch scheduling: `NextBatch` (Algorithm 3) and `Batch-DFS` (Algorithm 4).
//!
//! The buffer area `P` is treated as a stack. Batch-DFS always fills the
//! processing area from the *top* of that stack — the most recently produced,
//! i.e. longest, paths — because longer paths have stronger barrier pruning
//! and therefore generate the fewest new intermediate paths (Observation 1 /
//! Table III of the paper). Each fetched path hands over a *window* of at most
//! `Θ2 - cnt` successors, so a super node can be spread across several
//! batches without overflowing the processing area.
//!
//! The FIFO strategy (used by the Fig. 13 ablation) is identical except that
//! it fetches from the *bottom* of the stack — the oldest, shortest paths.

use super::PefpEngine;
use crate::options::BatchStrategy;
use crate::path::TempPath;

impl PefpEngine<'_> {
    /// `NextBatch(P, PD)` — Algorithm 3.
    ///
    /// Fills `batch` (cleared first) with the next processing-area batch,
    /// refilling the buffer from DRAM when it has run dry; the caller reuses
    /// the vector across batches so steady state allocates nothing. An empty
    /// `batch` on return terminates the engine loop.
    pub(super) fn next_batch(&mut self, batch: &mut Vec<TempPath>) {
        batch.clear();
        if self.buffer.is_empty() {
            if self.dram_paths.is_empty() {
                return;
            }
            self.refill_buffer_from_dram();
        }
        self.fill_processing_area(batch)
    }

    /// Fetches Θ1 paths from the tail of the DRAM path set into the buffer
    /// area (Algorithm 3, line 8). Reading from the tail keeps the transfer
    /// contiguous, matching the paper's fragmentation-avoidance argument.
    fn refill_buffer_from_dram(&mut self) {
        let n = self.opts.dram_fetch_batch.min(self.dram_paths.len());
        let start = self.dram_paths.len() - n;
        let words: u64 = self.dram_paths[start..].iter().map(TempPath::words).sum();
        self.device.charge_dram_batch_fetch(words);
        // Drain in place: no intermediate vector per refill.
        self.buffer.extend(self.dram_paths.drain(start..));
    }

    /// `Batch-DFS(P, Θ2)` — Algorithm 4 — or its FIFO counterpart.
    fn fill_processing_area(&mut self, batch: &mut Vec<TempPath>) {
        let mut cnt: u32 = 0;
        let theta2 = self.opts.processing_capacity;
        while cnt < theta2 {
            // Select the next donor path according to the batching strategy.
            let donor = match self.opts.batch_strategy {
                BatchStrategy::LongestFirst => self.buffer.back_mut(),
                BatchStrategy::Fifo => self.buffer.front_mut(),
            };
            let Some(donor) = donor else { break };
            match donor.take_window(theta2 - cnt) {
                Some(slice) => {
                    cnt += slice.window_len();
                    let exhausted = donor.window_exhausted();
                    self.charge_batch_path_move(&slice);
                    batch.push(slice);
                    if exhausted {
                        self.pop_donor();
                    }
                }
                None => {
                    // Paths with no successors left contribute nothing; drop them.
                    self.pop_donor();
                }
            }
        }
    }

    fn pop_donor(&mut self) {
        match self.opts.batch_strategy {
            BatchStrategy::LongestFirst => self.buffer.pop_back(),
            BatchStrategy::Fifo => self.buffer.pop_front(),
        };
    }

    /// Charges moving one path row from the buffer area into the processing
    /// area. BRAM→BRAM moves are fully overlapped with the pipeline (their
    /// latency is part of the pipeline depth), so only the DRAM case — the
    /// No-Cache configuration where the buffer itself lives off-chip — costs
    /// extra cycles.
    fn charge_batch_path_move(&mut self, path: &TempPath) {
        if !self.layout.paths_in_bram {
            self.device.charge_read(pefp_fpga::MemoryKind::Dram, path.words());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::PefpEngine;
    use crate::options::{BatchStrategy, EngineOptions};
    use crate::preprocess::pre_bfs;
    use pefp_fpga::{Device, DeviceConfig};
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;
    use pefp_graph::{CsrGraph, VertexId};

    fn run_with(
        g: &CsrGraph,
        s: u32,
        t: u32,
        k: u32,
        opts: EngineOptions,
    ) -> (Vec<Vec<VertexId>>, pefp_fpga::DeviceReport, crate::result::EngineStats) {
        let prep = pre_bfs(g, VertexId(s), VertexId(t), k);
        let device = Device::new(DeviceConfig::alveo_u200());
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, k, opts, device);
        let out = engine.run();
        let report = engine.device_report();
        let paths = out.paths.iter().map(|p| prep.translate_path(p)).collect();
        (paths, report, out.stats)
    }

    #[test]
    fn batch_dfs_and_fifo_return_identical_results() {
        let g = chung_lu(150, 6.0, 2.1, 21).to_csr();
        let (s, t, k) = (0u32, 70u32, 5u32);
        let dfs_opts = EngineOptions {
            batch_strategy: BatchStrategy::LongestFirst,
            processing_capacity: 8,
            buffer_capacity: 16,
            dram_fetch_batch: 16,
            ..EngineOptions::default()
        };
        let fifo_opts = EngineOptions { batch_strategy: BatchStrategy::Fifo, ..dfs_opts.clone() };
        let (a, _, _) = run_with(&g, s, t, k, dfs_opts);
        let (b, _, _) = run_with(&g, s, t, k, fifo_opts);
        assert_eq!(canonicalize(a), canonicalize(b));
    }

    #[test]
    fn batch_dfs_keeps_the_intermediate_population_smaller() {
        // A dense graph with a tight buffer: the FIFO order explodes the
        // intermediate path population (it expands all short paths first),
        // while Batch-DFS drives paths to completion depth-first.
        let g = chung_lu(200, 8.0, 2.1, 5).to_csr();
        let (s, t, k) = (0u32, 90u32, 5u32);
        let base = EngineOptions {
            processing_capacity: 16,
            buffer_capacity: 64,
            dram_fetch_batch: 32,
            collect_paths: false,
            ..EngineOptions::default()
        };
        let dfs_opts =
            EngineOptions { batch_strategy: BatchStrategy::LongestFirst, ..base.clone() };
        let fifo_opts = EngineOptions { batch_strategy: BatchStrategy::Fifo, ..base };
        let (_, _, dfs_stats) = run_with(&g, s, t, k, dfs_opts);
        let (_, _, fifo_stats) = run_with(&g, s, t, k, fifo_opts);
        assert!(
            dfs_stats.peak_buffer_paths + dfs_stats.peak_dram_paths
                <= fifo_stats.peak_buffer_paths + fifo_stats.peak_dram_paths,
            "Batch-DFS peak {} + {} should not exceed FIFO peak {} + {}",
            dfs_stats.peak_buffer_paths,
            dfs_stats.peak_dram_paths,
            fifo_stats.peak_buffer_paths,
            fifo_stats.peak_dram_paths
        );
    }

    #[test]
    fn batch_dfs_causes_fewer_dram_spills_than_fifo() {
        let g = chung_lu(200, 8.0, 2.1, 9).to_csr();
        let (s, t, k) = (1u32, 80u32, 5u32);
        let base = EngineOptions {
            processing_capacity: 16,
            buffer_capacity: 32,
            dram_fetch_batch: 32,
            collect_paths: false,
            ..EngineOptions::default()
        };
        let dfs_opts =
            EngineOptions { batch_strategy: BatchStrategy::LongestFirst, ..base.clone() };
        let fifo_opts = EngineOptions { batch_strategy: BatchStrategy::Fifo, ..base };
        let (_, dfs_report, _) = run_with(&g, s, t, k, dfs_opts);
        let (_, fifo_report, _) = run_with(&g, s, t, k, fifo_opts);
        assert!(
            dfs_report.counters.buffer_flushes <= fifo_report.counters.buffer_flushes,
            "Batch-DFS flushed {} times, FIFO {} times",
            dfs_report.counters.buffer_flushes,
            fifo_report.counters.buffer_flushes
        );
    }

    #[test]
    fn super_node_windows_are_split_across_batches() {
        // A star source with 40 leaves, each leading to t: with Θ2 = 8 the
        // source's successor list must be split across at least 5 batches.
        let mut edges = Vec::new();
        for leaf in 1..=40u32 {
            edges.push((0, leaf));
            edges.push((leaf, 41));
        }
        let g = CsrGraph::from_edges(42, &edges);
        let opts = EngineOptions {
            processing_capacity: 8,
            buffer_capacity: 64,
            dram_fetch_batch: 32,
            ..EngineOptions::default()
        };
        let (paths, _, stats) = run_with(&g, 0, 41, 2, opts);
        assert_eq!(paths.len(), 40);
        assert!(
            stats.batches >= 5,
            "expected the star to need >= 5 batches, got {}",
            stats.batches
        );
    }
}
