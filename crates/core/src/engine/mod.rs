//! The PEFP device-side engine (Algorithm 1 of the paper).
//!
//! The engine follows the expansion-and-verification framework:
//!
//! 1. fetch a batch of intermediate paths into the *processing area* `P'`
//!    ([`batch`], Algorithms 3 and 4),
//! 2. expand every path in the batch with its one-hop successors,
//! 3. verify each expansion with the three-stage check ([`verify`],
//!    Algorithm 2),
//! 4. write valid expansions back to the *buffer area* `P`, spilling to DRAM
//!    (`PD`) when the buffer is full, and emit result paths.
//!
//! All real computation happens in ordinary Rust data structures; every
//! memory access and pipeline execution is *charged* against the simulated
//! [`Device`] so the run produces both the exact result set and a simulated
//! device time (see `pefp-fpga` for the cost model and `DESIGN.md` for the
//! justification of the substitution).

pub mod batch;
pub mod memory;
pub mod verify;

use crate::options::{BatchStrategy, CancelToken, EngineOptions};
use crate::path::{TempPath, MAX_K};
use crate::result::{EngineOutput, EngineStats};
use memory::MemoryLayout;
use pefp_fpga::Device;
use pefp_graph::sink::{CollectSink, CountingSink, FirstN, PathSink};
use pefp_graph::{CsrGraph, RowPlacement, VertexId};
use std::collections::VecDeque;
use std::ops::ControlFlow;
use verify::Verdict;

/// Device-side enumeration engine for one prepared query.
pub struct PefpEngine<'a> {
    /// The (preprocessed) graph in CSR form.
    graph: &'a CsrGraph,
    /// Barrier array: `bar[u] = sd(u, t)` clamped to `k + 1`.
    barrier: &'a [u32],
    /// Source vertex (device ids).
    s: VertexId,
    /// Target vertex (device ids).
    t: VertexId,
    /// Hop constraint.
    k: u32,
    /// Engine configuration.
    opts: EngineOptions,
    /// Simulated device used for cost accounting.
    device: Device,
    /// Placement decisions (what ended up cached in BRAM).
    layout: MemoryLayout,
    /// DRAM addresses of the adjacency rows, planned only when the device
    /// charges banked DRAM stalls *and* the graph missed the BRAM cache —
    /// the one configuration where a row's bank assignment costs time.
    placement: Option<RowPlacement>,
    /// Buffer area `P` (front = oldest / bottom of the stack).
    buffer: VecDeque<TempPath>,
    /// DRAM-resident intermediate path set `PD`.
    dram_paths: Vec<TempPath>,
    /// Reusable emission buffer: the result path handed to the sink, so the
    /// hot loop allocates nothing per result.
    emit_buf: Vec<VertexId>,
    /// Behavioural counters.
    stats: EngineStats,
}

/// Per-vertex fetch-heat estimate for bank-aware row placement: how often
/// the enumeration is expected to fetch each adjacency row.
///
/// A row is fetched each time its vertex heads an expanded path, and the
/// paths reaching `v` are the admissible `s`-walks: length `ℓ` walks with
/// `ℓ + bar(v) ≤ k` (anything longer is pruned by the barrier before it is
/// ever expanded). The walk counts satisfy the obvious recurrence
/// `w_ℓ(v) = Σ_{u→v} w_{ℓ-1}(u)`, evaluated here in `k` sparse passes over
/// the CSR — `O(k·|E|)`, noise against the enumeration itself. Walks
/// overcount simple paths (they revisit vertices), but the *ranking* is what
/// placement consumes, and the overcount inflates exactly the rows the DFS
/// re-reads most. Counts are renormalised whenever they overflow `1e12`:
/// only relative heat matters.
fn placement_heat(graph: &CsrGraph, barrier: &[u32], s: VertexId, k: u32) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut heat = vec![0.0f64; n];
    let mut walks = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    walks[s.index()] = 1.0;
    heat[s.index()] = 1.0;
    for step in 1..=k {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in graph.vertices() {
            let wv = walks[v.index()];
            if wv == 0.0 {
                continue;
            }
            for &u in graph.successors(v) {
                if step + barrier[u.index()] <= k {
                    next[u.index()] += wv;
                }
            }
        }
        // A walk of length k cannot be extended, so its head is never
        // expanded (never fetched): it contributes no heat.
        if step < k {
            for (h, &w) in heat.iter_mut().zip(next.iter()) {
                *h += w;
            }
        }
        let max = next.iter().copied().fold(0.0f64, f64::max);
        if max == 0.0 {
            break;
        }
        if max > 1e12 {
            next.iter_mut().for_each(|x| *x /= max);
        }
        std::mem::swap(&mut walks, &mut next);
    }
    heat
}

impl<'a> PefpEngine<'a> {
    /// Creates an engine for one query.
    ///
    /// # Panics
    ///
    /// Panics when the options are invalid, `k` exceeds [`MAX_K`], or the
    /// barrier array does not cover the graph.
    pub fn new(
        graph: &'a CsrGraph,
        barrier: &'a [u32],
        s: VertexId,
        t: VertexId,
        k: u32,
        opts: EngineOptions,
        mut device: Device,
    ) -> Self {
        let problems = opts.validate();
        assert!(problems.is_empty(), "invalid engine options: {problems:?}");
        assert!(k as usize <= MAX_K, "hop constraint {k} exceeds MAX_K = {MAX_K}");
        assert_eq!(barrier.len(), graph.num_vertices(), "barrier array must cover every vertex");
        assert!(s.index() < graph.num_vertices(), "source {s} out of range");
        assert!(t.index() < graph.num_vertices(), "target {t} out of range");
        let layout = MemoryLayout::plan(&mut device, graph, &opts);
        let placement = if !layout.graph_cached && device.charges_banked_dram() {
            device.bank_geometry().map(|(banks, stripe)| {
                let heat = placement_heat(graph, barrier, s, k);
                RowPlacement::plan_with_heat(graph, opts.bank_placement, banks, stripe, &heat)
            })
        } else {
            None
        };
        PefpEngine {
            graph,
            barrier,
            s,
            t,
            k,
            opts,
            device,
            layout,
            placement,
            buffer: VecDeque::new(),
            dram_paths: Vec::new(),
            emit_buf: Vec::with_capacity(MAX_K + 1),
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine running on compute unit `cu` of a multi-CU
    /// [`pefp_fpga::CuCluster`]: the engine gets a fresh simulated device
    /// (own BRAM areas, counters and clock) whose DRAM transfers are metered
    /// by the cluster's shared arbiter, so enumeration slows down while other
    /// CUs are hammering the bus.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::new`], or when `cu` is out
    /// of range for the cluster.
    #[allow(clippy::too_many_arguments)]
    pub fn for_compute_unit(
        graph: &'a CsrGraph,
        barrier: &'a [u32],
        s: VertexId,
        t: VertexId,
        k: u32,
        opts: EngineOptions,
        cluster: &pefp_fpga::CuCluster,
        cu: usize,
    ) -> Self {
        Self::new(graph, barrier, s, t, k, opts, cluster.device_for_cu(cu))
    }

    /// The memory placement the engine planned for this query.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Consumes nothing; returns the simulated device report accumulated so far.
    pub fn device_report(&self) -> pefp_fpga::DeviceReport {
        self.device.report()
    }

    /// Runs the full enumeration (Algorithm 1), materialising or counting
    /// results according to [`EngineOptions::collect_paths`].
    ///
    /// This is a thin wrapper over [`Self::run_with_sink`]: collect mode uses
    /// a [`CollectSink`], counting mode a [`CountingSink`] — one shared code
    /// path, so `EngineStats::results` is consistent in both modes.
    pub fn run(&mut self) -> EngineOutput {
        if self.opts.collect_paths {
            let mut sink = CollectSink::new();
            let mut out = self.run_with_sink(&mut sink);
            out.paths = sink.into_paths();
            out
        } else {
            self.run_with_sink(&mut CountingSink::new())
        }
    }

    /// Runs the full enumeration (Algorithm 1), pushing every result path
    /// (device ids) into `sink` instead of materialising it.
    ///
    /// The returned [`EngineOutput`] carries the counters only
    /// (`paths` is empty); `num_paths` counts emissions into the sink (see
    /// [`Self::emit_result_path`] for the breaking-path convention). When the
    /// sink breaks — or the [`EngineOptions::max_results`] cap is hit — the
    /// engine stops expanding immediately and
    /// [`EngineStats::early_terminated`] is set.
    pub fn run_with_sink<S: PathSink + ?Sized>(&mut self, sink: &mut S) -> EngineOutput {
        match self.opts.max_results {
            // A zero cap short-circuits: nothing may reach the sink.
            Some(0) => {
                self.stats.early_terminated = true;
                self.take_output()
            }
            Some(n) => {
                let mut capped = FirstN::new(n, sink);
                self.run_inner(&mut capped)
            }
            None => self.run_inner(sink),
        }
    }

    /// The Algorithm 1 loop, generic over the result consumer.
    fn run_inner<S: PathSink + ?Sized>(&mut self, sink: &mut S) -> EngineOutput {
        // Trivial queries never reach the device in the real system; handle
        // them here so the engine is total.
        if self.s == self.t {
            let path = [self.s];
            if self.emit_result_path(sink, &path).is_break() {
                self.stats.early_terminated = true;
            }
            return self.take_output();
        }
        if self.k == 0 {
            return self.take_output();
        }

        // Line 2: P'.push({s}).
        let mut processing: Vec<TempPath> = Vec::new();
        let mut initial = TempPath::initial(self.graph, self.s);
        // The initial path may itself exceed the processing capacity (a super
        // node source); split it exactly like any buffered path.
        while let Some(copy) = initial.take_window(self.opts.processing_capacity) {
            if processing.is_empty() {
                processing.push(copy);
            } else {
                // Remaining windows go to the buffer to be scheduled later.
                self.buffer.push_back(copy);
            }
        }
        self.device.charge_cycles(1);

        // Lines 3-15: expand, verify, write back, fetch next batch. The
        // processing-area vector is reused across batches, so the loop
        // allocates nothing once the buffers reached their high-water marks.
        while !processing.is_empty() {
            // Co-operative cancellation boundary: a host that abandoned the
            // query (dropped ticket, disconnected client) flips the token and
            // the engine stops before fetching another batch.
            if self.opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.stats.cancelled = true;
                self.stats.early_terminated = true;
                break;
            }
            // Fault boundary: a transfer checksum latched a fault (DRAM
            // corruption, PCIe error, crashed CU) — abort instead of
            // expanding from potentially corrupted state. Polled in the same
            // place as cancellation so a faulted batch never emits further
            // results.
            if self.poll_device_fault() {
                break;
            }
            self.stats.batches += 1;
            if self.process_batch(&processing, sink).is_break() {
                self.stats.early_terminated = true;
                break;
            }
            self.next_batch(&mut processing);
        }
        // One final poll so a fault raised during the last batch (or the
        // result DMA) is reported on the run, not silently dropped.
        self.poll_device_fault();
        self.take_output()
    }

    /// Checks the device's fault latch and the simulated-cycle watchdog.
    /// Returns `true` (and records the fault) when the run must abort.
    fn poll_device_fault(&mut self) -> bool {
        if self.stats.device_fault.is_some() {
            return true;
        }
        let event = self.device.pending_fault().or_else(|| {
            let budget = self.opts.cycle_budget?;
            (self.device.cycles() > budget)
                .then(|| self.device.raise_fault(pefp_fpga::FaultKind::CuHang))
        });
        if let Some(event) = event {
            self.stats.device_fault = Some(event);
            self.stats.early_terminated = true;
            return true;
        }
        false
    }

    /// Expands and verifies one batch from the processing area.
    ///
    /// The functional work (successor lookup, three-stage verification, result
    /// emission, buffer writes) is done in software; the device is charged a
    /// *throughput-oriented* schedule: all inputs of the batch stream through
    /// the replicated, pipelined expansion/verification lanes, BRAM-resident
    /// data feeds the pipeline without serial cost (its latency sits in the
    /// pipeline depth), and only the accesses that genuinely leave the chip —
    /// uncached graph/barrier lookups (as an initiation-interval stall),
    /// intermediate paths written to DRAM, and result paths shipped to the
    /// host — appear as extra DRAM cost.
    /// Returns [`ControlFlow::Break`] when the sink terminated the
    /// enumeration; the device is still charged for the work performed up to
    /// that point.
    fn process_batch<S: PathSink + ?Sized>(
        &mut self,
        batch: &[TempPath],
        sink: &mut S,
    ) -> ControlFlow<()> {
        let mut flow = ControlFlow::Continue(());
        let mut total_inputs: u64 = 0;
        let mut result_words: u64 = 0;
        let mut dram_intermediate_words: u64 = 0;

        'batch: for path in batch {
            let window = path.window_start()..path.window_end();
            let window_len = (window.end - window.start) as u64;
            if window_len == 0 {
                continue;
            }
            total_inputs += window_len;
            // Traffic bookkeeping for the graph/barrier lookups; their timing
            // impact is folded into the pipeline initiation interval below.
            if self.layout.graph_cached {
                self.device.note_cache_hits(1);
            } else {
                self.device.note_cache_misses(1, window_len);
                // Under banked charging the row fetch is timed at its
                // *placed* address: the start bank decides whether this
                // burst conflicts with the previous one. The base fetch
                // latency stays folded into the pipeline initiation
                // interval below; only the bank stall is charged here.
                if let Some(placement) = &self.placement {
                    let head = path.last();
                    let row_start = self.graph.neighbor_range(head).start;
                    let addr = placement.row_address(head) + u64::from(window.start - row_start);
                    self.device.charge_placed_row_fetch(addr, window_len);
                }
            }
            if self.layout.barrier_cached {
                self.device.note_cache_hits(window_len);
            } else {
                self.device.note_cache_misses(window_len, window_len);
            }

            for edge_idx in window {
                let nbr = self.graph.edge_target(edge_idx);
                self.stats.expansions += 1;
                match verify::verify(path, nbr, self.t, self.k, self.barrier[nbr.index()]) {
                    Verdict::Result => {
                        // Reuse the emission buffer: no allocation per result.
                        let mut full = std::mem::take(&mut self.emit_buf);
                        full.clear();
                        full.extend_from_slice(path.vertices());
                        full.push(nbr);
                        result_words += full.len() as u64;
                        let emitted = self.emit_result_path(sink, &full);
                        self.emit_buf = full;
                        if emitted.is_break() {
                            flow = ControlFlow::Break(());
                            break 'batch;
                        }
                    }
                    Verdict::Valid => {
                        let extended = path.extended(self.graph, nbr);
                        dram_intermediate_words += self.push_intermediate(extended);
                    }
                    Verdict::PrunedBarrier => self.stats.pruned_by_barrier += 1,
                    Verdict::PrunedVisited => self.stats.pruned_by_visited += 1,
                }
            }
        }

        // Compute schedule: the batch streams through the replicated lanes.
        let lanes = self.device.verification_lanes() as u64;
        let lane_iterations = total_inputs.div_ceil(lanes.max(1));
        let memory_stall_ii = if self.layout.graph_cached && self.layout.barrier_cached {
            1
        } else {
            self.device.config().dram_read_latency
        };
        verify::charge_expansion_schedule(
            &mut self.device,
            self.opts.verification,
            lane_iterations,
            memory_stall_ii,
        );

        // Off-chip writes produced by this batch, issued as contiguous bursts.
        if result_words > 0 {
            self.device.charge_write(pefp_fpga::MemoryKind::Dram, result_words);
        }
        if dram_intermediate_words > 0 {
            self.device.charge_write(pefp_fpga::MemoryKind::Dram, dram_intermediate_words);
        }
        flow
    }

    /// Emits one result path (device ids) into the sink. The DRAM write that
    /// ships results back to the host is charged per batch by
    /// [`Self::process_batch`].
    ///
    /// `stats.results` counts emission *attempts*: when the sink breaks, the
    /// breaking path is included in the count (for a `FirstN(n >= 1)` cap the
    /// n-th path is both delivered and the break). A sink that refuses its
    /// very first path (a saturated `FirstN(0)`) therefore still counts one
    /// emission; the `max_results: Some(0)` cap is special-cased in
    /// [`Self::run_with_sink`] so the built-in path never hits that edge.
    fn emit_result_path<S: PathSink + ?Sized>(
        &mut self,
        sink: &mut S,
        path: &[VertexId],
    ) -> ControlFlow<()> {
        self.stats.results += 1;
        sink.emit(path)
    }

    /// Writes a freshly validated intermediate path to the buffer area,
    /// spilling to DRAM when the buffer is full (Algorithm 1, lines 12-14).
    ///
    /// Returns the number of words this push sent directly to DRAM (non-zero
    /// only when intermediate-path caching is disabled), so the caller can
    /// charge the transfer as one burst per batch.
    fn push_intermediate(&mut self, path: TempPath) -> u64 {
        self.stats.intermediate_paths += 1;
        if !self.layout.paths_in_bram {
            // No caching of intermediate paths: everything lives in DRAM.
            let words = path.words();
            self.dram_paths.push(path);
            self.stats.peak_dram_paths = self.stats.peak_dram_paths.max(self.dram_paths.len());
            return words;
        }
        if self.buffer.len() >= self.opts.buffer_capacity {
            self.flush_buffer();
        }
        self.buffer.push_back(path);
        self.stats.peak_buffer_paths = self.stats.peak_buffer_paths.max(self.buffer.len());
        0
    }

    /// Flushes part of the buffer area to DRAM. Batch-DFS keeps the newest
    /// (longest) paths on-chip and spills the oldest; FIFO keeps the oldest
    /// and spills the newest, consistent with its processing order.
    fn flush_buffer(&mut self) {
        let to_flush = (self.opts.buffer_capacity / 2).max(1);
        let mut words = 0u64;
        for _ in 0..to_flush.min(self.buffer.len()) {
            let p = match self.opts.batch_strategy {
                BatchStrategy::LongestFirst => self.buffer.pop_front(),
                BatchStrategy::Fifo => self.buffer.pop_back(),
            };
            let Some(p) = p else { break };
            words += p.words();
            self.dram_paths.push(p);
        }
        self.device.charge_buffer_flush(words);
        self.stats.peak_dram_paths = self.stats.peak_dram_paths.max(self.dram_paths.len());
    }

    fn take_output(&mut self) -> EngineOutput {
        EngineOutput { paths: Vec::new(), num_paths: self.stats.results, stats: self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::VerificationPipeline;
    use crate::preprocess::pre_bfs;
    use pefp_fpga::DeviceConfig;
    use pefp_graph::paths::{canonicalize, validate_result};

    fn run_engine(g: &CsrGraph, s: u32, t: u32, k: u32, opts: EngineOptions) -> EngineOutput {
        let prep = pre_bfs(g, VertexId(s), VertexId(t), k);
        let device = Device::new(DeviceConfig::alveo_u200());
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, k, opts, device);
        let mut out = engine.run();
        // Translate back to original ids for comparison.
        out.paths = out.paths.iter().map(|p| prep.translate_path(p)).collect();
        out
    }

    #[test]
    fn diamond_enumeration() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let out = run_engine(&g, 0, 3, 3, EngineOptions::default());
        assert_eq!(out.num_paths, 2);
        assert!(validate_result(&g, VertexId(0), VertexId(3), 3, &out.paths).is_empty());
    }

    #[test]
    fn matches_naive_dfs_on_random_graphs() {
        use pefp_baselines::naive_dfs_enumerate;
        for seed in 0..3u64 {
            let g = pefp_graph::generators::chung_lu(80, 4.0, 2.2, seed + 500).to_csr();
            for &(s, t, k) in &[(0u32, 17u32, 4u32), (3, 60, 5)] {
                let out = run_engine(&g, s, t, k, EngineOptions::default());
                let expected = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
                assert_eq!(canonicalize(out.paths), expected, "seed {seed} query ({s},{t},{k})");
            }
        }
    }

    #[test]
    fn all_option_combinations_agree() {
        use pefp_baselines::naive_dfs_enumerate;
        let g = pefp_graph::generators::chung_lu(70, 5.0, 2.1, 42).to_csr();
        let (s, t, k) = (1u32, 30u32, 5u32);
        let expected = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
        for strategy in [BatchStrategy::LongestFirst, BatchStrategy::Fifo] {
            for cache in [true, false] {
                for pipeline in [VerificationPipeline::Basic, VerificationPipeline::Dataflow] {
                    let opts = EngineOptions {
                        batch_strategy: strategy,
                        use_cache: cache,
                        verification: pipeline,
                        processing_capacity: 16,
                        buffer_capacity: 32,
                        dram_fetch_batch: 16,
                        collect_paths: true,
                        max_results: None,
                        cancel: None,
                        cycle_budget: None,
                        bank_placement: pefp_graph::PlacementPolicy::Natural,
                    };
                    let out = run_engine(&g, s, t, k, opts);
                    assert_eq!(
                        canonicalize(out.paths),
                        expected,
                        "strategy {strategy:?} cache {cache} pipeline {pipeline:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_capacities_force_spills_but_keep_correctness() {
        use pefp_baselines::naive_dfs_enumerate;
        let g = pefp_graph::generators::chung_lu(100, 6.0, 2.1, 77).to_csr();
        let (s, t, k) = (0u32, 40u32, 5u32);
        let opts = EngineOptions {
            processing_capacity: 4,
            buffer_capacity: 8,
            dram_fetch_batch: 8,
            ..EngineOptions::default()
        };
        let out = run_engine(&g, s, t, k, opts);
        let expected = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
        assert_eq!(canonicalize(out.paths), expected);
    }

    #[test]
    fn counting_mode_reports_without_materialising() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let opts = EngineOptions { collect_paths: false, ..EngineOptions::default() };
        let out = run_engine(&g, 0, 3, 3, opts);
        assert_eq!(out.num_paths, 2);
        assert!(out.paths.is_empty());
    }

    #[test]
    fn sink_run_matches_collect_run() {
        let g = pefp_graph::generators::chung_lu(120, 6.0, 2.1, 99).to_csr();
        let prep = pre_bfs(&g, VertexId(0), VertexId(60), 5);
        let collected = {
            let device = Device::new(DeviceConfig::alveo_u200());
            let mut engine = PefpEngine::new(
                &prep.graph,
                &prep.barrier,
                prep.s,
                prep.t,
                prep.k,
                EngineOptions::default(),
                device,
            );
            engine.run()
        };
        let mut sink = pefp_graph::CollectSink::new();
        let streamed = {
            let device = Device::new(DeviceConfig::alveo_u200());
            let mut engine = PefpEngine::new(
                &prep.graph,
                &prep.barrier,
                prep.s,
                prep.t,
                prep.k,
                EngineOptions::default(),
                device,
            );
            engine.run_with_sink(&mut sink)
        };
        assert_eq!(sink.into_paths(), collected.paths);
        assert_eq!(streamed.num_paths, collected.num_paths);
        assert_eq!(streamed.stats, collected.stats);
        assert!(streamed.paths.is_empty(), "sink runs never materialise internally");
    }

    #[test]
    fn first_n_sink_terminates_the_engine_early() {
        use pefp_graph::{CollectSink, FirstN};
        // A dense layered DAG with 4^5 = 1024 result paths.
        let g = pefp_graph::generators::layered_dag(5, 4, 4, 1).to_csr();
        let s = pefp_graph::generators::layered_source();
        let t = pefp_graph::generators::layered_sink(5, 4);
        let opts = EngineOptions {
            processing_capacity: 16,
            buffer_capacity: 32,
            dram_fetch_batch: 16,
            ..EngineOptions::default()
        };
        let prep = pre_bfs(&g, s, t, 6);
        let full = {
            let device = Device::new(DeviceConfig::alveo_u200());
            let mut engine = PefpEngine::new(
                &prep.graph,
                &prep.barrier,
                prep.s,
                prep.t,
                prep.k,
                opts.clone(),
                device,
            );
            engine.run()
        };
        assert_eq!(full.num_paths, 1024);
        assert!(!full.stats.early_terminated);

        let mut sink = FirstN::new(3, CollectSink::new());
        let capped = {
            let device = Device::new(DeviceConfig::alveo_u200());
            let mut engine =
                PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, opts, device);
            engine.run_with_sink(&mut sink)
        };
        assert_eq!(capped.num_paths, 3);
        assert!(capped.stats.early_terminated);
        // The first 3 paths in enumeration order, exactly.
        assert_eq!(sink.into_inner().paths(), &full.paths[..3]);
        assert!(
            capped.stats.batches < full.stats.batches,
            "early termination must skip batches ({} vs {})",
            capped.stats.batches,
            full.stats.batches
        );
        assert!(capped.stats.expansions < full.stats.expansions);
    }

    #[test]
    fn max_results_option_caps_via_first_n() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let opts = EngineOptions { max_results: Some(1), ..EngineOptions::default() };
        let out = run_engine(&g, 0, 3, 3, opts);
        assert_eq!(out.num_paths, 1);
        assert_eq!(out.paths.len(), 1);
        assert!(out.stats.early_terminated);

        // A zero cap emits nothing at all.
        let opts = EngineOptions { max_results: Some(0), ..EngineOptions::default() };
        let out = run_engine(&g, 0, 3, 3, opts);
        assert_eq!(out.num_paths, 0);
        assert!(out.paths.is_empty());
        assert!(out.stats.early_terminated);
        assert_eq!(out.stats.expansions, 0, "a zero cap must not expand anything");
    }

    #[test]
    fn cancel_token_stops_the_engine_between_batches() {
        use crate::options::CancelToken;
        use pefp_graph::sink::FnSink;
        // A dense layered DAG with 4^5 = 1024 result paths, small batches so
        // there are many batch boundaries to cancel at.
        let g = pefp_graph::generators::layered_dag(5, 4, 4, 1).to_csr();
        let s = pefp_graph::generators::layered_source();
        let t = pefp_graph::generators::layered_sink(5, 4);
        let prep = pre_bfs(&g, s, t, 6);
        let token = CancelToken::new();
        let opts = EngineOptions {
            processing_capacity: 8,
            buffer_capacity: 16,
            dram_fetch_batch: 8,
            cancel: Some(token.clone()),
            ..EngineOptions::default()
        };
        let mut emitted = 0u64;
        let mut sink = FnSink(|_path: &[VertexId]| {
            emitted += 1;
            if emitted == 1 {
                // Cancel from "another thread": the engine keeps emitting for
                // the rest of this batch, then stops at the boundary.
                token.cancel();
            }
            ControlFlow::Continue(())
        });
        let out = {
            let device = Device::new(DeviceConfig::alveo_u200());
            let mut engine =
                PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, opts, device);
            engine.run_with_sink(&mut sink)
        };
        assert!(out.stats.cancelled);
        assert!(out.stats.early_terminated);
        assert!(out.num_paths < 1024, "cancellation must stop the enumeration early");
        // An uncancelled token leaves the run untouched.
        let opts = EngineOptions { cancel: Some(CancelToken::new()), ..EngineOptions::default() };
        let out = run_engine(&g, s.0, t.0, 6, opts);
        assert_eq!(out.num_paths, 1024);
        assert!(!out.stats.cancelled);
    }

    #[test]
    fn dram_fault_aborts_the_run_at_a_batch_boundary() {
        use pefp_fpga::{FaultKind, FaultPlan, ScriptedFault};
        let g = pefp_graph::generators::layered_dag(5, 4, 4, 1).to_csr();
        let s = pefp_graph::generators::layered_source();
        let t = pefp_graph::generators::layered_sink(5, 4);
        let prep = pre_bfs(&g, s, t, 6);
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 3, kind: FaultKind::DramCorruption });
        let mut device = Device::new(DeviceConfig::alveo_u200());
        device.attach_fault_injector(plan.injector_for(0));
        let opts = EngineOptions {
            processing_capacity: 8,
            buffer_capacity: 16,
            dram_fetch_batch: 8,
            ..EngineOptions::default()
        };
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, opts, device);
        let out = engine.run();
        let fault = out.stats.device_fault.expect("the checksum fault must be observed");
        assert_eq!(fault.kind, FaultKind::DramCorruption);
        assert!(out.stats.early_terminated);
        assert!(out.num_paths < 1024, "the run aborted before enumerating everything");
        assert_eq!(engine.device_report().fault, Some(fault));
    }

    #[test]
    fn cycle_watchdog_raises_a_hang_fault() {
        use pefp_fpga::{FaultPlan, FaultRates};
        let g = pefp_graph::generators::layered_dag(5, 4, 4, 1).to_csr();
        let s = pefp_graph::generators::layered_source();
        let t = pefp_graph::generators::layered_sink(5, 4);
        let prep = pre_bfs(&g, s, t, 6);
        // Every DRAM refill stalls for far longer than the budget: the CU
        // stops making progress and the watchdog must catch it.
        let rates = FaultRates { cu_stall: 1.0, stall_cycles: 10_000_000, ..FaultRates::NONE };
        let plan = FaultPlan::seeded(5, rates, 1);
        let mut device = Device::new(DeviceConfig::alveo_u200());
        device.attach_fault_injector(plan.injector_for(0));
        let opts = EngineOptions { cycle_budget: Some(1_000_000), ..EngineOptions::default() };
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, opts, device);
        let out = engine.run();
        let fault = out.stats.device_fault.expect("watchdog must trip");
        assert_eq!(fault.kind, pefp_fpga::FaultKind::CuHang);
        assert!(out.stats.early_terminated);
        // A generous budget on a healthy device never trips.
        let device = Device::new(DeviceConfig::alveo_u200());
        let opts = EngineOptions { cycle_budget: Some(u64::MAX), ..EngineOptions::default() };
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, opts, device);
        let out = engine.run();
        assert!(out.stats.device_fault.is_none());
        assert_eq!(out.num_paths, 1024);
    }

    #[test]
    fn trivial_queries() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let out = run_engine(&g, 1, 1, 3, EngineOptions::default());
        assert_eq!(out.num_paths, 1);
        let out = run_engine(&g, 0, 2, 0, EngineOptions::default());
        assert_eq!(out.num_paths, 0);
    }

    #[test]
    fn trivial_query_honours_the_sink_break() {
        // A capped trivial (s == t) query is flagged as cut short exactly
        // like a capped non-trivial one.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let opts = EngineOptions { max_results: Some(1), ..EngineOptions::default() };
        let out = run_engine(&g, 1, 1, 3, opts);
        assert_eq!(out.num_paths, 1);
        assert!(out.stats.early_terminated);
        let out =
            run_engine(&g, 1, 1, 3, EngineOptions { max_results: Some(5), ..Default::default() });
        assert_eq!(out.num_paths, 1);
        assert!(!out.stats.early_terminated);
    }

    #[test]
    fn stats_track_pruning_and_batches() {
        let g = pefp_graph::generators::chung_lu(120, 6.0, 2.1, 13).to_csr();
        let out = run_engine(&g, 0, 50, 4, EngineOptions::default());
        assert!(out.stats.batches >= 1);
        assert!(out.stats.expansions >= out.stats.intermediate_paths + out.stats.results);
        assert_eq!(out.stats.results, out.num_paths);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_K")]
    fn k_beyond_max_is_rejected() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let barrier = vec![0, 0];
        let device = Device::new(DeviceConfig::alveo_u200());
        let _ = PefpEngine::new(
            &g,
            &barrier,
            VertexId(0),
            VertexId(1),
            99,
            EngineOptions::default(),
            device,
        );
    }

    #[test]
    #[should_panic(expected = "barrier array")]
    fn short_barrier_is_rejected() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let barrier = vec![0];
        let device = Device::new(DeviceConfig::alveo_u200());
        let _ = PefpEngine::new(
            &g,
            &barrier,
            VertexId(0),
            VertexId(2),
            2,
            EngineOptions::default(),
            device,
        );
    }
}
