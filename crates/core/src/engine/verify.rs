//! Path verification (Algorithm 2) and its pipeline cost model.
//!
//! Each expansion `(p, u)` passes through three checks:
//!
//! 1. **target check** — `u == t` means `p · u` is a result path;
//! 2. **barrier check** — `len(p) + 1 + bar[u] > k` means the hop budget can
//!    no longer be met through `u`;
//! 3. **visited check** — `u ∈ p` would create a cycle.
//!
//! On the device the three checks form the validity-check module. In the
//! *basic* design (Fig. 6) they execute back to back, so one input occupies
//! the module for the full three-stage latency before the next can enter. The
//! *data-separation* design (Fig. 7) feeds each stage its own copy of the
//! input so the stages run concurrently under the HLS dataflow optimisation,
//! and a merge stage ANDs the verdicts; inputs then enter every cycle.

use crate::options::VerificationPipeline;
use crate::path::TempPath;
use pefp_fpga::Device;
use pefp_graph::VertexId;

/// Outcome of verifying one expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The successor is the target: emit `p · u` as a result (and stop
    /// extending it — results are never re-expanded).
    Result,
    /// The successor passed all three checks: `p · u` becomes a new
    /// intermediate path.
    Valid,
    /// Rejected by the barrier check.
    PrunedBarrier,
    /// Rejected by the visited check.
    PrunedVisited,
}

/// Functional verification of one expansion (Algorithm 2).
#[inline]
pub fn verify(path: &TempPath, successor: VertexId, t: VertexId, k: u32, barrier: u32) -> Verdict {
    let new_hops = path.hops() + 1;
    // Target check. Intermediate paths always satisfy len(p) <= k - 1 (see the
    // paper's correctness argument), so `new_hops <= k` holds whenever the
    // engine is driven normally; the explicit guard keeps the function total.
    if successor == t {
        if new_hops <= k {
            return Verdict::Result;
        }
        return Verdict::PrunedBarrier;
    }
    // Barrier check.
    if new_hops + barrier > k {
        return Verdict::PrunedBarrier;
    }
    // Visited check (constant-bound loop, unrolled on the device).
    if path.contains(successor) {
        return Verdict::PrunedVisited;
    }
    Verdict::Valid
}

/// Charges the verification module's schedule for `lane_iterations` inputs per
/// lane (the engine divides the batch across the replicated validity-check
/// modules before calling this).
pub fn charge_verification(
    device: &mut Device,
    pipeline: VerificationPipeline,
    lane_iterations: u64,
) {
    charge_expansion_schedule(device, pipeline, lane_iterations, 1);
}

/// Charges the complete per-batch expansion + verification schedule.
///
/// The batch streams `lane_iterations` inputs through each replicated lane.
/// The pipeline's initiation interval is determined by two bottlenecks:
///
/// * the verification module — 1 cycle with data separation (Fig. 7), the full
///   three-stage depth without it (Fig. 6), and
/// * memory — 1 cycle when the graph and barrier are served from BRAM, the
///   DRAM read latency when a lookup has to go off-chip (`memory_stall_ii`),
///   which is exactly why the caching techniques matter (Fig. 14).
///
/// The pipeline depth (fill latency) is the expansion stage plus the deeper of
/// the two verification schedules; it is paid once per batch.
pub fn charge_expansion_schedule(
    device: &mut Device,
    pipeline: VerificationPipeline,
    lane_iterations: u64,
    memory_stall_ii: u64,
) {
    let cfg = device.config().clone();
    let verify_ii = match pipeline {
        VerificationPipeline::Basic => cfg.basic_verify_depth,
        VerificationPipeline::Dataflow => 1,
    };
    let ii = verify_ii.max(memory_stall_ii).max(1);
    // Expansion stage (successor fetch + input assembly) is ~2 cycles deep,
    // followed by the verification module and the merge stage.
    let depth = 2 + cfg.basic_verify_depth.max(cfg.dataflow_verify_depth + cfg.merge_depth);
    device.charge_cycles(pefp_fpga::pipeline_cycles(lane_iterations, depth, ii));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_fpga::DeviceConfig;
    use pefp_graph::CsrGraph;

    fn path_0_1(g: &CsrGraph) -> TempPath {
        TempPath::initial(g, VertexId(0)).extended(g, VertexId(1))
    }

    #[test]
    fn target_check_wins_over_everything() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = path_0_1(&g);
        assert_eq!(verify(&p, VertexId(3), VertexId(3), 5, 0), Verdict::Result);
    }

    #[test]
    fn barrier_check_prunes_budget_violations() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = path_0_1(&g); // 1 hop used
                              // Needs 2 more hops after the expansion, but only 3 total allowed: 1+1+2 > 3.
        assert_eq!(verify(&p, VertexId(2), VertexId(9), 3, 2), Verdict::PrunedBarrier);
        // With k = 4 the same expansion survives.
        assert_eq!(verify(&p, VertexId(2), VertexId(9), 4, 2), Verdict::Valid);
    }

    #[test]
    fn visited_check_prevents_cycles() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2)]);
        let p = path_0_1(&g);
        assert_eq!(verify(&p, VertexId(0), VertexId(3), 5, 0), Verdict::PrunedVisited);
    }

    #[test]
    fn check_order_matches_the_paper() {
        // A successor that is simultaneously the target and already on the
        // path cannot occur (t is never pushed), but a successor that fails
        // both barrier and visited must be attributed to the barrier stage,
        // because that stage is evaluated first.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let p = path_0_1(&g);
        assert_eq!(verify(&p, VertexId(0), VertexId(2), 1, 5), Verdict::PrunedBarrier);
    }

    #[test]
    fn overlong_target_hit_is_not_emitted() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = path_0_1(&g);
        assert_eq!(verify(&p, VertexId(2), VertexId(2), 1, 0), Verdict::PrunedBarrier);
    }

    #[test]
    fn dataflow_schedule_is_cheaper_than_basic() {
        let mut basic = Device::new(DeviceConfig::alveo_u200());
        charge_verification(&mut basic, VerificationPipeline::Basic, 10_000);
        let mut dataflow = Device::new(DeviceConfig::alveo_u200());
        charge_verification(&mut dataflow, VerificationPipeline::Dataflow, 10_000);
        assert!(dataflow.cycles() < basic.cycles());
        // With depth 3 vs II 1 the gap approaches 3x for large batches.
        let ratio = basic.cycles() as f64 / dataflow.cycles() as f64;
        assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn zero_inputs_cost_nothing() {
        let mut d = Device::new(DeviceConfig::alveo_u200());
        charge_verification(&mut d, VerificationPipeline::Basic, 0);
        charge_verification(&mut d, VerificationPipeline::Dataflow, 0);
        assert_eq!(d.cycles(), 0);
    }
}
