//! BRAM placement planning (the paper's caching techniques, Section VI-B).
//!
//! Before a query starts, the engine decides what fits in on-chip memory:
//!
//! * the CSR arrays of the (preprocessed) graph (`vertex_arr`, `edge_arr`),
//! * the barrier array (`bar_arr`),
//! * the buffer area for intermediate paths, and
//! * the processing area.
//!
//! Thanks to Pre-BFS the induced subgraph usually fits entirely — the paper
//! notes "in most cases, we can fit the whole subgraph and barrier data in
//! BRAM". When something does not fit (or caching is disabled for the
//! ablation), the engine transparently degrades to DRAM accesses, which the
//! cost model then charges at DRAM latency.

use crate::options::EngineOptions;
use crate::path::MAX_K;
use pefp_fpga::Device;
use pefp_graph::CsrGraph;
use serde::{Deserialize, Serialize};

/// Bytes occupied by one path row in the buffer/processing area: the inline
/// vertex payload plus length word and the two neighbour pointers.
pub const PATH_ROW_BYTES: usize = (MAX_K + 1 + 3) * 4;

/// Result of the placement pass: what the engine managed to keep on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// CSR offset + edge arrays are cached in BRAM.
    pub graph_cached: bool,
    /// Barrier array is cached in BRAM.
    pub barrier_cached: bool,
    /// The buffer area for intermediate paths lives in BRAM (false means every
    /// intermediate path goes straight to DRAM).
    pub paths_in_bram: bool,
    /// Bytes of BRAM reserved for the buffer + processing areas.
    pub path_area_bytes: usize,
    /// Bytes of BRAM reserved for the graph and barrier caches.
    pub cache_bytes: usize,
}

impl MemoryLayout {
    /// Plans the BRAM allocation for one query and reserves the regions on the
    /// device. Called once per query by the engine constructor.
    pub fn plan(device: &mut Device, graph: &CsrGraph, opts: &EngineOptions) -> MemoryLayout {
        // Start from a clean slate: the previous query's regions are released.
        device.bram_mut().release_all();

        // The processing area always lives in BRAM — it is the working set of
        // the pipeline and is sized by Θ2 (one row per in-flight path slice).
        let processing_bytes = opts.processing_capacity as usize * PATH_ROW_BYTES;
        let processing_ok = device.bram_mut().try_allocate("processing_area", processing_bytes);
        debug_assert!(processing_ok, "processing area must fit in BRAM; shrink Θ2");

        if !opts.use_cache {
            return MemoryLayout {
                graph_cached: false,
                barrier_cached: false,
                paths_in_bram: false,
                path_area_bytes: processing_bytes,
                cache_bytes: 0,
            };
        }

        let buffer_bytes = opts.buffer_capacity * PATH_ROW_BYTES;
        let paths_in_bram = device.bram_mut().try_allocate("buffer_area", buffer_bytes);

        let (offsets, targets) = graph.raw_parts();
        let graph_bytes = offsets.len() * 4 + targets.len() * 4;
        let graph_cached = device.bram_mut().try_allocate("graph_cache", graph_bytes);

        let barrier_bytes = graph.num_vertices() * 4;
        let barrier_cached = device.bram_mut().try_allocate("barrier_cache", barrier_bytes);

        MemoryLayout {
            graph_cached,
            barrier_cached,
            paths_in_bram,
            path_area_bytes: processing_bytes + if paths_in_bram { buffer_bytes } else { 0 },
            cache_bytes: if graph_cached { graph_bytes } else { 0 }
                + if barrier_cached { barrier_bytes } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_fpga::DeviceConfig;
    use pefp_graph::generators::chung_lu;

    fn small_graph() -> CsrGraph {
        chung_lu(200, 5.0, 2.2, 3).to_csr()
    }

    #[test]
    fn everything_fits_on_the_u200_for_small_subgraphs() {
        let g = small_graph();
        let mut device = Device::new(DeviceConfig::alveo_u200());
        let layout = MemoryLayout::plan(&mut device, &g, &EngineOptions::default());
        assert!(layout.graph_cached);
        assert!(layout.barrier_cached);
        assert!(layout.paths_in_bram);
        assert!(device.bram().used() >= layout.cache_bytes + layout.path_area_bytes);
    }

    #[test]
    fn disabling_cache_skips_every_cache_region() {
        let g = small_graph();
        let mut device = Device::new(DeviceConfig::alveo_u200());
        let opts = EngineOptions { use_cache: false, ..EngineOptions::default() };
        let layout = MemoryLayout::plan(&mut device, &g, &opts);
        assert!(!layout.graph_cached);
        assert!(!layout.barrier_cached);
        assert!(!layout.paths_in_bram);
        assert_eq!(layout.cache_bytes, 0);
        // Only the processing area remains allocated.
        assert_eq!(device.bram().allocations().len(), 1);
    }

    #[test]
    fn tiny_devices_degrade_gracefully() {
        let g = small_graph();
        // 16 KiB of BRAM: the processing area fits only with a small Θ2, and
        // the graph cache certainly does not.
        let mut device = Device::new(DeviceConfig::tiny_for_tests());
        let opts = EngineOptions {
            processing_capacity: 32,
            buffer_capacity: 64,
            ..EngineOptions::default()
        };
        let layout = MemoryLayout::plan(&mut device, &g, &opts);
        assert!(
            !layout.graph_cached,
            "a 200-vertex CSR cannot fit in 16 KiB next to the path areas"
        );
    }

    #[test]
    fn replanning_releases_previous_regions() {
        let g = small_graph();
        let mut device = Device::new(DeviceConfig::alveo_u200());
        let _ = MemoryLayout::plan(&mut device, &g, &EngineOptions::default());
        let used_once = device.bram().used();
        let _ = MemoryLayout::plan(&mut device, &g, &EngineOptions::default());
        assert_eq!(device.bram().used(), used_once, "planning twice must not leak regions");
    }

    #[test]
    fn path_row_width_matches_temp_path_capacity() {
        assert_eq!(PATH_ROW_BYTES, (MAX_K + 4) * 4);
    }
}
