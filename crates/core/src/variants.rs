//! High-level query runner and the PEFP variants used by the ablations.
//!
//! The experiments in Section VII compare the full PEFP system against four
//! degraded variants, each disabling exactly one technique:
//!
//! | variant            | disabled technique                | paper figure |
//! |---------------------|-----------------------------------|--------------|
//! | `Full`              | —                                 | Fig. 8–11    |
//! | `NoPreBfs`          | Pre-BFS preprocessing             | Fig. 12      |
//! | `NoBatchDfs`        | Batch-DFS (uses FIFO batching)    | Fig. 13      |
//! | `NoCache`           | BRAM caching (paths/graph/barrier)| Fig. 14      |
//! | `NoDataSep`         | data separation (basic pipeline)  | Fig. 15      |
//!
//! [`run_query`] ties everything together: preprocessing on the host, PCIe
//! transfer, the device engine run, and result translation back to original
//! vertex ids.

use crate::engine::PefpEngine;
use crate::options::{BatchStrategy, EngineOptions, VerificationPipeline};
use crate::preprocess::{
    no_prebfs_preprocess, no_prebfs_snapshot_with, no_prebfs_with, pre_bfs, pre_bfs_snapshot_with,
    pre_bfs_with, PrepareContext, PreparedQuery,
};
use crate::result::PefpRunResult;
use pefp_fpga::{Device, DeviceConfig};
use pefp_graph::sink::{CollectSink, CountingSink, PathSink, TranslateSink};
use pefp_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The PEFP system configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PefpVariant {
    /// Full PEFP: Pre-BFS + Batch-DFS + caching + data separation.
    Full,
    /// PEFP without the Pre-BFS preprocessing (Fig. 12).
    NoPreBfs,
    /// PEFP with FIFO batching instead of Batch-DFS (Fig. 13).
    NoBatchDfs,
    /// PEFP without BRAM caching (Fig. 14).
    NoCache,
    /// PEFP with the basic (non-dataflow) verification pipeline (Fig. 15).
    NoDataSep,
}

impl PefpVariant {
    /// All variants, full system first.
    pub fn all() -> [PefpVariant; 5] {
        [
            PefpVariant::Full,
            PefpVariant::NoPreBfs,
            PefpVariant::NoBatchDfs,
            PefpVariant::NoCache,
            PefpVariant::NoDataSep,
        ]
    }

    /// The name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PefpVariant::Full => "PEFP",
            PefpVariant::NoPreBfs => "PEFP-No-Pre-BFS",
            PefpVariant::NoBatchDfs => "PEFP-No-Batch-DFS",
            PefpVariant::NoCache => "PEFP-No-Cache",
            PefpVariant::NoDataSep => "PEFP-No-DataSep",
        }
    }

    /// Whether this variant runs the Pre-BFS preprocessing.
    pub fn uses_prebfs(self) -> bool {
        !matches!(self, PefpVariant::NoPreBfs)
    }

    /// Engine options implementing this variant.
    pub fn engine_options(self) -> EngineOptions {
        let mut opts = EngineOptions::pefp_default();
        match self {
            PefpVariant::Full | PefpVariant::NoPreBfs => {}
            PefpVariant::NoBatchDfs => opts.batch_strategy = BatchStrategy::Fifo,
            PefpVariant::NoCache => opts.use_cache = false,
            PefpVariant::NoDataSep => opts.verification = VerificationPipeline::Basic,
        }
        opts
    }
}

/// Runs the host preprocessing for `variant` (Pre-BFS or the full-graph
/// fallback), returning the prepared query with its host timing filled in.
///
/// One-shot form; repeated-query callers should reuse a [`PrepareContext`]
/// via [`prepare_with`], which amortises BFS scratch and the reverse CSR.
pub fn prepare(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
) -> PreparedQuery {
    if variant.uses_prebfs() {
        pre_bfs(g, s, t, k)
    } else {
        no_prebfs_preprocess(g, s, t, k)
    }
}

/// [`prepare`] against a reusable [`PrepareContext`] and a shared graph:
/// per-query cost is proportional to the touched subgraph, and the full-graph
/// paths (no-Pre-BFS, trivial queries) share `g` instead of cloning it.
pub fn prepare_with(
    ctx: &mut PrepareContext,
    g: &Arc<CsrGraph>,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
) -> PreparedQuery {
    if variant.uses_prebfs() {
        pre_bfs_with(ctx, g, s, t, k)
    } else {
        no_prebfs_with(ctx, g, s, t, k)
    }
}

/// [`prepare_with`] against an epoch-versioned graph snapshot: queries are
/// preprocessed over the snapshot's copy-on-write overlay, so concurrent
/// updates to newer epochs never show through. The host runtime captures one
/// snapshot per admitted job and prepares against it here.
pub fn prepare_snapshot_with(
    ctx: &mut PrepareContext,
    snapshot: &pefp_graph::delta::GraphSnapshot,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
) -> PreparedQuery {
    if variant.uses_prebfs() {
        pre_bfs_snapshot_with(ctx, snapshot, s, t, k)
    } else {
        no_prebfs_snapshot_with(ctx, snapshot, s, t, k)
    }
}

/// Runs one complete PEFP query: preprocessing, PCIe transfer, device
/// enumeration and result translation.
pub fn run_query(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
    device_config: &DeviceConfig,
) -> PefpRunResult {
    run_query_with_options(g, s, t, k, variant, variant.engine_options(), device_config)
}

/// [`run_query`] with explicit engine options (used by the parameter-sweep
/// benchmarks; the options still inherit the variant's preprocessing choice).
pub fn run_query_with_options(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
    options: EngineOptions,
    device_config: &DeviceConfig,
) -> PefpRunResult {
    let prep = prepare(g, s, t, k, variant);
    run_prepared(&prep, options, device_config)
}

/// Runs the device phase for an already prepared query. Splitting this out
/// lets the benchmarks amortise preprocessing across repeated device runs.
///
/// Collect-everything wrapper over [`run_prepared_with_sink`]: with
/// `collect_paths` set the paths are gathered by a [`CollectSink`] (already
/// translated to original ids), otherwise a [`CountingSink`] counts them —
/// either way the same streaming pipeline runs underneath.
pub fn run_prepared(
    prep: &PreparedQuery,
    options: EngineOptions,
    device_config: &DeviceConfig,
) -> PefpRunResult {
    if options.collect_paths {
        let mut sink = CollectSink::new();
        let mut result = run_prepared_with_sink(prep, options, device_config, &mut sink);
        result.paths = sink.into_paths();
        result
    } else {
        run_prepared_with_sink(prep, options, device_config, &mut CountingSink::new())
    }
}

/// Runs the device phase for an already prepared query, streaming every
/// result path into `sink` in *original* graph vertex ids.
///
/// The translation from device ids happens inside a [`TranslateSink`] wrapper
/// with a reused scratch buffer, so no intermediate device-id path vector is
/// ever materialised between the engine and the caller. The returned
/// [`PefpRunResult`] carries timings, the device report and the engine
/// counters; its `paths` field is always empty.
pub fn run_prepared_with_sink<S: PathSink + ?Sized>(
    prep: &PreparedQuery,
    options: EngineOptions,
    device_config: &DeviceConfig,
    sink: &mut S,
) -> PefpRunResult {
    run_prepared_on_device(prep, options, Device::new(device_config.clone()), sink)
}

/// [`run_prepared_with_sink`] against a caller-supplied device instead of a
/// freshly instantiated one — the entry point for multi-CU execution, where
/// each device is one compute unit of a [`pefp_fpga::CuCluster`] and shares
/// the card's DRAM arbiter with its siblings.
///
/// The device is consumed: it accounts exactly one query (matching the
/// single-CU pipeline, which builds a fresh device per query) and its report
/// is returned inside the [`PefpRunResult`].
pub fn run_prepared_on_device<S: PathSink + ?Sized>(
    prep: &PreparedQuery,
    options: EngineOptions,
    mut device: Device,
    sink: &mut S,
) -> PefpRunResult {
    // Host -> device DMA of the subgraph, barrier and query parameters.
    device.charge_pcie_transfer(prep.transfer_bytes());

    let host_start = Instant::now();
    let (output, report) = if prep.feasible {
        let mut engine =
            PefpEngine::new(&prep.graph, &prep.barrier, prep.s, prep.t, prep.k, options, device);
        let output = match &prep.mapping {
            Some(mapping) => {
                let mut translate = TranslateSink::new(mapping, sink);
                engine.run_with_sink(&mut translate)
            }
            None => engine.run_with_sink(sink),
        };
        let report = engine.device_report();
        (output, report)
    } else {
        (crate::result::EngineOutput::default(), device.report())
    };
    let host_engine_millis = host_start.elapsed().as_secs_f64() * 1e3;

    PefpRunResult {
        num_paths: output.num_paths,
        paths: Vec::new(),
        preprocess_millis: prep.host_millis,
        query_millis: report.total_millis,
        host_engine_millis,
        device: report,
        stats: output.stats,
    }
}

/// Runs one complete PEFP query — preprocessing, PCIe transfer, device
/// enumeration — streaming every result path into `sink` in original graph
/// vertex ids instead of materialising the result set.
///
/// `options.collect_paths` is irrelevant here: the engine always pushes into
/// the caller's sink. Combine with [`pefp_graph::FirstN`] or
/// [`EngineOptions::max_results`] for early termination.
#[allow(clippy::too_many_arguments)]
pub fn run_query_with_sink<S: PathSink + ?Sized>(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
    options: EngineOptions,
    device_config: &DeviceConfig,
    sink: &mut S,
) -> PefpRunResult {
    let prep = prepare(g, s, t, k, variant);
    run_prepared_with_sink(&prep, options, device_config, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::{canonicalize, validate_result};

    #[test]
    fn every_variant_produces_the_same_result_set() {
        let g = chung_lu(120, 5.0, 2.2, 31).to_csr();
        let (s, t, k) = (VertexId(0), VertexId(55), 5);
        let expected = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        let cfg = DeviceConfig::alveo_u200();
        for variant in PefpVariant::all() {
            let result = run_query(&g, s, t, k, variant, &cfg);
            assert_eq!(
                canonicalize(result.paths.clone()),
                expected,
                "variant {} diverged",
                variant.name()
            );
            assert_eq!(result.num_paths as usize, expected.len());
            assert!(validate_result(&g, s, t, k as usize, &result.paths).is_empty());
        }
    }

    #[test]
    fn full_variant_is_fastest_in_simulated_time() {
        let g = chung_lu(300, 7.0, 2.1, 8).to_csr();
        let (s, t, k) = (VertexId(0), VertexId(150), 5);
        let cfg = DeviceConfig::alveo_u200();
        let full = run_query(&g, s, t, k, PefpVariant::Full, &cfg);
        for variant in [PefpVariant::NoCache, PefpVariant::NoDataSep] {
            let degraded = run_query(&g, s, t, k, variant, &cfg);
            assert!(
                degraded.device.cycles >= full.device.cycles,
                "{} ({} cycles) should not beat the full system ({} cycles)",
                variant.name(),
                degraded.device.cycles,
                full.device.cycles
            );
        }
    }

    #[test]
    fn prebfs_reduces_preprocess_plus_transfer_work() {
        let g = chung_lu(400, 6.0, 2.2, 3).to_csr();
        let (s, t, k) = (VertexId(2), VertexId(200), 4);
        let with = prepare(&g, s, t, k, PefpVariant::Full);
        let without = prepare(&g, s, t, k, PefpVariant::NoPreBfs);
        assert!(with.transfer_bytes() <= without.transfer_bytes());
        assert!(with.graph.num_vertices() <= without.graph.num_vertices());
    }

    #[test]
    fn infeasible_queries_return_quickly_and_empty() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let cfg = DeviceConfig::alveo_u200();
        let r = run_query(&g, VertexId(0), VertexId(5), 8, PefpVariant::Full, &cfg);
        assert_eq!(r.num_paths, 0);
        assert!(r.paths.is_empty());
    }

    #[test]
    fn cluster_device_run_matches_the_standalone_device() {
        use pefp_fpga::{CuCluster, MultiCuConfig};
        let g = chung_lu(150, 5.0, 2.2, 77).to_csr();
        let (s, t, k) = (VertexId(0), VertexId(70), 4);
        let cfg = DeviceConfig::alveo_u200();
        let prep = prepare(&g, s, t, k, PefpVariant::Full);
        let opts = PefpVariant::Full.engine_options();

        let mut standalone_sink = pefp_graph::CollectSink::new();
        let standalone = run_prepared_with_sink(&prep, opts.clone(), &cfg, &mut standalone_sink);

        // An idle cluster (no other active CU) must be cycle-identical.
        let cluster = CuCluster::new(
            cfg.clone(),
            MultiCuConfig { compute_units: 2, per_cu_bandwidth_share: 0.5, charge_banked: false },
        );
        let mut cu_sink = pefp_graph::CollectSink::new();
        let on_cu =
            run_prepared_on_device(&prep, opts.clone(), cluster.device_for_cu(1), &mut cu_sink);
        assert_eq!(cu_sink.into_paths(), standalone_sink.into_paths());
        assert_eq!(on_cu.device.cycles, standalone.device.cycles);
        assert_eq!(on_cu.device.contention_cycles, 0);
        assert_eq!(on_cu.device.dram_cycles, standalone.device.dram_cycles);

        // With the bus saturated by other CUs, the same query takes longer —
        // by exactly the inflated DRAM share — but the results are untouched.
        let _others: Vec<_> = (0..4).map(|_| cluster.arbiter().activate()).collect();
        let mut contended_sink = pefp_graph::CollectSink::new();
        let contended =
            run_prepared_on_device(&prep, opts, cluster.device_for_cu(0), &mut contended_sink);
        assert_eq!(contended.num_paths, standalone.num_paths);
        assert!(contended.device.contention_cycles > 0);
        assert_eq!(
            contended.device.cycles,
            standalone.device.cycles + contended.device.contention_cycles
        );
    }

    #[test]
    fn pcie_fault_on_the_transfer_dma_is_reported_on_the_run() {
        use pefp_fpga::{CuCluster, FaultKind, FaultPlan, MultiCuConfig, ScriptedFault};
        let g = chung_lu(120, 5.0, 2.2, 31).to_csr();
        let prep = prepare(&g, VertexId(0), VertexId(55), 5, PefpVariant::Full);
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::PcieError });
        let cluster =
            CuCluster::with_faults(DeviceConfig::alveo_u200(), MultiCuConfig::default(), plan);
        let mut sink = pefp_graph::CollectSink::new();
        let result = run_prepared_on_device(
            &prep,
            PefpVariant::Full.engine_options(),
            cluster.device_for_cu(0),
            &mut sink,
        );
        let fault = result.device_fault().expect("the DMA checksum must catch the fault");
        assert_eq!(fault.kind, FaultKind::PcieError);
        assert_eq!(result.num_paths, 0, "the engine aborts before emitting anything");
        assert!(sink.into_paths().is_empty());
    }

    #[test]
    fn variant_metadata_is_consistent() {
        assert_eq!(PefpVariant::all().len(), 5);
        assert_eq!(PefpVariant::Full.name(), "PEFP");
        assert!(PefpVariant::Full.uses_prebfs());
        assert!(!PefpVariant::NoPreBfs.uses_prebfs());
        assert_eq!(PefpVariant::NoBatchDfs.engine_options().batch_strategy, BatchStrategy::Fifo);
        assert!(!PefpVariant::NoCache.engine_options().use_cache);
        assert_eq!(
            PefpVariant::NoDataSep.engine_options().verification,
            VerificationPipeline::Basic
        );
    }

    #[test]
    fn total_time_combines_both_phases() {
        let g = chung_lu(100, 4.0, 2.2, 12).to_csr();
        let cfg = DeviceConfig::alveo_u200();
        let r = run_query(&g, VertexId(0), VertexId(50), 4, PefpVariant::Full, &cfg);
        assert!((r.total_millis() - (r.preprocess_millis + r.query_millis)).abs() < 1e-12);
        assert!(r.query_millis > 0.0);
    }
}
