//! Multi-query batches: the paper's host/device workflow at query-set
//! granularity.
//!
//! Section VII-A: "for each dataset, we have evaluated the time it takes to
//! transfer the 1,000 queries and their corresponding data graphs (after
//! preprocessing) from the host to FPGA DRAM at once" — i.e. the host
//! preprocesses a whole batch of queries, ships all prepared subgraphs in a
//! single DMA transfer, and the device then answers them one after another.
//!
//! [`run_query_batch`] reproduces that workflow. Host-side preprocessing is
//! embarrassingly parallel across queries, so it is spread over a configurable
//! number of CPU worker threads (std scoped threads); the device phase
//! stays sequential and deterministic, matching the single-kernel design of
//! the paper.

use crate::preprocess::{PrepareContext, PreparedQuery};
use crate::result::PefpRunResult;
use crate::variants::{prepare_with, run_prepared, run_prepared_with_sink, PefpVariant};
use pefp_fpga::{Device, DeviceConfig};
use pefp_graph::sink::PathSink;
use pefp_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Aggregate report for a batch of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Number of queries executed.
    pub queries: usize,
    /// Total number of result paths across the batch.
    pub total_paths: u64,
    /// Host wall-clock time spent preprocessing the whole batch (ms). With
    /// more than one worker this is the elapsed time, not the summed time.
    pub preprocess_millis: f64,
    /// Simulated time of the single host→device DMA transfer shipping every
    /// prepared subgraph at once (ms).
    pub transfer_millis: f64,
    /// Sum of the per-query simulated device times (ms).
    pub device_millis: f64,
    /// Per-query simulated device time (ms), in input order.
    pub per_query_device_millis: Vec<f64>,
}

impl BatchReport {
    /// Average simulated device time per query, in milliseconds.
    pub fn avg_device_millis(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.device_millis / self.queries as f64
        }
    }

    /// End-to-end batch time: preprocessing + one transfer + device time.
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer_millis + self.device_millis
    }
}

/// Preprocesses `queries` on `workers` host threads and runs them on the
/// simulated device, shipping all prepared data in one DMA transfer.
///
/// The graph is taken as `Arc` so the no-Pre-BFS ablation and trivial queries
/// share it per query instead of cloning it, and each worker amortises one
/// [`PrepareContext`] (epoch-stamped BFS scratch + the reverse CSR, built
/// once per batch rather than once per query) across its whole slice.
///
/// Returns the aggregate report and the individual per-query results (paths
/// in original vertex ids), in the same order as the input.
pub fn run_query_batch(
    g: &Arc<CsrGraph>,
    queries: &[(VertexId, VertexId)],
    k: u32,
    variant: PefpVariant,
    device_config: &DeviceConfig,
    workers: usize,
) -> (BatchReport, Vec<PefpRunResult>) {
    let (prepared, preprocess_millis, transfer_millis) =
        stage_batch(g, queries, k, variant, device_config, workers);

    let mut results = Vec::with_capacity(prepared.len());
    let mut per_query_device_millis = Vec::with_capacity(prepared.len());
    let mut total_paths = 0u64;
    let mut device_millis = 0.0;
    for prep in &prepared {
        let result = run_prepared(prep, variant.engine_options(), device_config);
        let kernel_only = result.device.kernel_millis;
        per_query_device_millis.push(kernel_only);
        device_millis += kernel_only;
        total_paths += result.num_paths;
        results.push(result);
    }

    let report = BatchReport {
        queries: queries.len(),
        total_paths,
        preprocess_millis,
        transfer_millis,
        device_millis,
        per_query_device_millis,
    };
    (report, results)
}

/// Streaming form of [`run_query_batch`]: query `i`'s result paths (original
/// vertex ids) are pushed into `sinks[i]` instead of being materialised, so a
/// high-volume batch never holds `O(#paths × k)` result memory at any layer.
///
/// A sink that breaks terminates *its own* query early (the engine stops
/// expanding); the rest of the batch continues. Only the aggregate
/// [`BatchReport`] is returned — per-query counts are whatever each sink
/// recorded, and `total_paths` counts the paths actually emitted.
///
/// # Panics
///
/// Panics when `sinks.len() != queries.len()`.
pub fn run_query_batch_with_sinks<S: PathSink>(
    g: &Arc<CsrGraph>,
    queries: &[(VertexId, VertexId)],
    k: u32,
    variant: PefpVariant,
    device_config: &DeviceConfig,
    workers: usize,
    sinks: &mut [S],
) -> BatchReport {
    assert_eq!(sinks.len(), queries.len(), "one sink per query");
    let (prepared, preprocess_millis, transfer_millis) =
        stage_batch(g, queries, k, variant, device_config, workers);

    let mut per_query_device_millis = Vec::with_capacity(prepared.len());
    let mut total_paths = 0u64;
    let mut device_millis = 0.0;
    for (prep, sink) in prepared.iter().zip(sinks.iter_mut()) {
        let result = run_prepared_with_sink(prep, variant.engine_options(), device_config, sink);
        let kernel_only = result.device.kernel_millis;
        per_query_device_millis.push(kernel_only);
        device_millis += kernel_only;
        total_paths += result.num_paths;
    }

    BatchReport {
        queries: queries.len(),
        total_paths,
        preprocess_millis,
        transfer_millis,
        device_millis,
        per_query_device_millis,
    }
}

/// The batch work shared by the collect and streaming entry points: host
/// preprocessing (sequential or across workers) and the single batched DMA
/// transfer. Returns the prepared queries, the elapsed preprocessing time
/// (ms) and the simulated transfer time (ms).
///
/// (The per-query transfer inside the device runners is excluded from the
/// batch accounting by charging the aggregate here and reporting kernel-only
/// time per query.)
fn stage_batch(
    g: &Arc<CsrGraph>,
    queries: &[(VertexId, VertexId)],
    k: u32,
    variant: PefpVariant,
    device_config: &DeviceConfig,
    workers: usize,
) -> (Vec<PreparedQuery>, f64, f64) {
    let workers = workers.max(1);
    let start = std::time::Instant::now();
    let prepared: Vec<PreparedQuery> = if workers == 1 || queries.len() <= 1 {
        let mut ctx = PrepareContext::new();
        queries.iter().map(|&(s, t)| prepare_with(&mut ctx, g, s, t, k, variant)).collect()
    } else {
        parallel_prepare(g, queries, k, variant, workers)
    };
    let preprocess_millis = start.elapsed().as_secs_f64() * 1e3;

    let batch_bytes: usize = prepared.iter().map(PreparedQuery::transfer_bytes).sum();
    let mut transfer_probe = Device::new(device_config.clone());
    transfer_probe.charge_pcie_transfer(batch_bytes);
    let transfer_millis = transfer_probe.report().pcie_millis;

    (prepared, preprocess_millis, transfer_millis)
}

/// Preprocesses the queries on `workers` scoped threads, preserving order.
/// The reverse CSR is built once up front and shared read-only; each worker
/// owns one [`PrepareContext`] for the lifetime of its slice.
fn parallel_prepare(
    g: &Arc<CsrGraph>,
    queries: &[(VertexId, VertexId)],
    k: u32,
    variant: PefpVariant,
    workers: usize,
) -> Vec<PreparedQuery> {
    let reverse = Arc::new(g.reverse());
    let mut slots: Vec<Option<PreparedQuery>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    let chunk = queries.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (query_chunk, slot_chunk) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let reverse = Arc::clone(&reverse);
            scope.spawn(move || {
                let mut ctx = PrepareContext::with_reverse(g, reverse);
                for (&(s, t), slot) in query_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(prepare_with(&mut ctx, g, s, t, k, variant));
                }
            });
        }
    });
    slots.into_iter().map(|p| p.expect("every slot is filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;

    fn sample_queries(g: &CsrGraph, n: usize) -> Vec<(VertexId, VertexId)> {
        (0..n)
            .map(|i| {
                let s = VertexId((i * 7 % g.num_vertices()) as u32);
                let t = VertexId(((i * 13 + 5) % g.num_vertices()) as u32);
                (s, t)
            })
            .collect()
    }

    #[test]
    fn batch_results_match_individual_queries() {
        let g = Arc::new(chung_lu(100, 5.0, 2.2, 1234).to_csr());
        let queries = sample_queries(&g, 6);
        let device = DeviceConfig::alveo_u200();
        let (report, results) = run_query_batch(&g, &queries, 4, PefpVariant::Full, &device, 1);
        assert_eq!(report.queries, 6);
        assert_eq!(results.len(), 6);
        for ((s, t), result) in queries.iter().zip(&results) {
            let expected = canonicalize(naive_dfs_enumerate(&g, *s, *t, 4));
            assert_eq!(canonicalize(result.paths.clone()), expected);
        }
        assert_eq!(report.total_paths, results.iter().map(|r| r.num_paths).sum::<u64>());
    }

    #[test]
    fn parallel_preprocessing_matches_sequential() {
        let g = Arc::new(chung_lu(200, 5.0, 2.2, 77).to_csr());
        let queries = sample_queries(&g, 9);
        let device = DeviceConfig::alveo_u200();
        let (seq_report, seq_results) =
            run_query_batch(&g, &queries, 4, PefpVariant::Full, &device, 1);
        let (par_report, par_results) =
            run_query_batch(&g, &queries, 4, PefpVariant::Full, &device, 4);
        assert_eq!(seq_report.total_paths, par_report.total_paths);
        for (a, b) in seq_results.iter().zip(&par_results) {
            assert_eq!(canonicalize(a.paths.clone()), canonicalize(b.paths.clone()));
            assert_eq!(a.device.cycles, b.device.cycles, "device work must be deterministic");
        }
    }

    #[test]
    fn transfer_time_matches_the_paper_ballpark() {
        // The paper reports 0.1-0.3 ms of amortised transfer per query; a
        // batch of small prepared subgraphs must stay in that regime.
        let g = Arc::new(chung_lu(300, 6.0, 2.2, 5).to_csr());
        let queries = sample_queries(&g, 20);
        let device = DeviceConfig::alveo_u200();
        let (report, _) = run_query_batch(&g, &queries, 4, PefpVariant::Full, &device, 2);
        let per_query_ms = report.transfer_millis / report.queries as f64;
        assert!(per_query_ms < 0.3, "per-query transfer {per_query_ms} ms is too large");
        assert!(report.total_millis() >= report.device_millis);
        assert!(report.avg_device_millis() > 0.0);
    }

    #[test]
    fn sink_batch_streams_the_same_results_without_materialising() {
        use pefp_graph::sink::{CollectSink, FirstN};

        let g = Arc::new(chung_lu(150, 5.0, 2.2, 99).to_csr());
        let queries = sample_queries(&g, 5);
        let device = DeviceConfig::alveo_u200();
        let (report, results) = run_query_batch(&g, &queries, 4, PefpVariant::Full, &device, 1);

        let mut sinks: Vec<CollectSink> = vec![CollectSink::new(); queries.len()];
        let sink_report =
            run_query_batch_with_sinks(&g, &queries, 4, PefpVariant::Full, &device, 2, &mut sinks);
        assert_eq!(sink_report.total_paths, report.total_paths);
        assert_eq!(sink_report.queries, report.queries);
        for (sink, result) in sinks.into_iter().zip(&results) {
            assert_eq!(sink.into_paths(), result.paths);
        }

        // Early termination is per query: capping every sink at one path
        // leaves the rest of the batch untouched.
        let mut capped: Vec<FirstN<CollectSink>> =
            queries.iter().map(|_| FirstN::new(1, CollectSink::new())).collect();
        let capped_report =
            run_query_batch_with_sinks(&g, &queries, 4, PefpVariant::Full, &device, 1, &mut capped);
        let nonempty = results.iter().filter(|r| r.num_paths > 0).count() as u64;
        assert_eq!(capped_report.total_paths, nonempty);
        for (cap, result) in capped.iter().zip(&results) {
            assert_eq!(cap.emitted(), u64::from(result.num_paths > 0));
        }
    }

    #[test]
    #[should_panic(expected = "one sink per query")]
    fn sink_batch_requires_one_sink_per_query() {
        let g = Arc::new(chung_lu(40, 4.0, 2.2, 1).to_csr());
        let queries = sample_queries(&g, 3);
        let mut sinks = vec![pefp_graph::sink::CountingSink::new(); 2];
        run_query_batch_with_sinks(
            &g,
            &queries,
            3,
            PefpVariant::Full,
            &DeviceConfig::alveo_u200(),
            1,
            &mut sinks,
        );
    }

    #[test]
    fn empty_batch_is_handled() {
        let g = Arc::new(chung_lu(50, 4.0, 2.2, 3).to_csr());
        let device = DeviceConfig::alveo_u200();
        let (report, results) = run_query_batch(&g, &[], 4, PefpVariant::Full, &device, 4);
        assert_eq!(report.queries, 0);
        assert!(results.is_empty());
        assert_eq!(report.avg_device_millis(), 0.0);
    }
}
