//! Host-side query planner.
//!
//! The paper fixes one engine configuration for the whole evaluation (the
//! Alveo U200 bitstream is built once), but a software reproduction can size
//! the buffer/processing areas per query: a query whose pruned subgraph is a
//! handful of vertices does not need an 8,192-path buffer area, and a query
//! with an enormous predicted intermediate volume benefits from dedicating as
//! much BRAM as possible to the buffer so fewer flushes reach DRAM. The
//! planner turns the Pre-BFS output plus a [`DeviceConfig`] into
//! [`EngineOptions`], the implied on-chip memory map and a resource estimate,
//! with a human-readable rationale for every decision.

use crate::counting::QueryEstimate;
use crate::engine::memory::PATH_ROW_BYTES;
use crate::options::{BatchStrategy, EngineOptions, VerificationPipeline};
use crate::preprocess::PreparedQuery;
use pefp_fpga::{DeviceConfig, ModuleCosts, OnChipAreas, ResourceBudget, ResourceEstimate};

/// The plan the host ships together with the query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Engine options to run the query with.
    pub options: EngineOptions,
    /// The on-chip memory areas the options imply.
    pub areas: OnChipAreas,
    /// Resource estimate of the configuration against the card budget.
    pub resources: ResourceEstimate,
    /// Predicted result / intermediate-path volume used for the sizing.
    pub estimate: QueryEstimate,
    /// One line per decision, in the order they were made.
    pub rationale: Vec<String>,
}

impl QueryPlan {
    /// Whether the planned configuration fits on the card.
    pub fn fits_device(&self) -> bool {
        self.resources.fits()
    }
}

fn round_down_pow2(x: usize) -> usize {
    if x <= 1 {
        1
    } else {
        1usize << (usize::BITS - 1 - x.leading_zeros())
    }
}

/// Plans engine options for a prepared query on `config`.
///
/// The heuristics are deliberately simple and fully deterministic:
///
/// 1. reserve BRAM for the graph and barrier caches when they fit,
/// 2. give half of the remaining BRAM to the buffer area (power-of-two
///    capacity, clamped to `[256, 65_536]` paths),
/// 3. size the processing area Θ2 at 1/8 of the buffer (clamped to
///    `[64, 4_096]` slots) and the DRAM fetch batch Θ1 at half the buffer,
/// 4. always keep Batch-DFS and the data-separated verification pipeline —
///    the ablations show they never lose.
pub fn plan_query(prepared: &PreparedQuery, config: &DeviceConfig) -> QueryPlan {
    let mut rationale = Vec::new();
    let g = &prepared.graph;
    let estimate = QueryEstimate::compute(g, prepared.s, prepared.t, prepared.k);
    rationale.push(format!(
        "pruned subgraph has {} vertices / {} edges; ≤ {} results, ≤ {} intermediate paths predicted",
        g.num_vertices(),
        g.num_edges(),
        estimate.max_results,
        estimate.max_intermediate_paths
    ));

    // Step 1: cache sizing.
    let (offsets, targets) = g.raw_parts();
    let graph_bytes = offsets.len() * 4 + targets.len() * 4;
    let barrier_bytes = g.num_vertices() * 4;
    let bram = config.bram_bytes;
    let cache_bytes = graph_bytes + barrier_bytes;
    let use_cache = cache_bytes <= bram / 2;
    if use_cache {
        rationale.push(format!(
            "graph + barrier ({} B) fit in half the BRAM ({} B): caching enabled",
            cache_bytes,
            bram / 2
        ));
    } else {
        rationale.push(format!(
            "graph + barrier ({} B) exceed half the BRAM ({} B): caching disabled, accesses go to DRAM",
            cache_bytes,
            bram / 2
        ));
    }

    // Step 2: buffer area from the remaining BRAM.
    let remaining = bram.saturating_sub(if use_cache { cache_bytes } else { 0 });
    let buffer_budget_paths = (remaining / 2) / PATH_ROW_BYTES;
    let predicted = estimate.max_intermediate_paths.min(65_536) as usize;
    let mut buffer_capacity = round_down_pow2(buffer_budget_paths.max(1));
    buffer_capacity = buffer_capacity.clamp(256, 65_536);
    if predicted > 0 && predicted < buffer_capacity {
        buffer_capacity = round_down_pow2(predicted.next_power_of_two()).clamp(256, 65_536);
        rationale.push(format!(
            "predicted intermediate volume ({predicted}) is small: buffer area shrunk to {buffer_capacity} paths"
        ));
    } else {
        rationale.push(format!(
            "buffer area sized at {buffer_capacity} paths from {remaining} B of free BRAM"
        ));
    }

    // Step 3: processing area and DRAM fetch batch.
    let processing_capacity = (buffer_capacity / 8).clamp(64, 4_096) as u32;
    let dram_fetch_batch = (buffer_capacity / 2).max(1);
    rationale.push(format!(
        "processing area Θ2 = {processing_capacity} slots, DRAM fetch batch Θ1 = {dram_fetch_batch} paths"
    ));

    // Step 4: fixed algorithmic choices.
    rationale.push(
        "Batch-DFS batching and data-separated verification kept (ablations show no regression)"
            .to_string(),
    );

    let options = EngineOptions {
        batch_strategy: BatchStrategy::LongestFirst,
        use_cache,
        verification: VerificationPipeline::Dataflow,
        processing_capacity,
        buffer_capacity,
        dram_fetch_batch,
        collect_paths: true,
        max_results: None,
        cancel: None,
        cycle_budget: None,
        bank_placement: pefp_graph::PlacementPolicy::Natural,
    };

    let areas = OnChipAreas {
        buffer_bytes: buffer_capacity * PATH_ROW_BYTES,
        processing_bytes: processing_capacity as usize * PATH_ROW_BYTES,
        graph_cache_bytes: if use_cache { graph_bytes } else { 0 },
        barrier_cache_bytes: if use_cache { barrier_bytes } else { 0 },
        fifo_bytes: config.verification_lanes * 2 * PATH_ROW_BYTES,
    };
    let resources = ResourceEstimate::estimate(
        config.verification_lanes,
        &areas,
        &ModuleCosts::default(),
        ResourceBudget::alveo_u200(),
    );

    QueryPlan { options, areas, resources, estimate, rationale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::pre_bfs;
    use crate::variants::{run_prepared, PefpVariant};
    use pefp_graph::generators::chung_lu;
    use pefp_graph::{CsrGraph, VertexId};

    fn prepared_on(g: &CsrGraph, s: u32, t: u32, k: u32) -> PreparedQuery {
        pre_bfs(g, VertexId(s), VertexId(t), k)
    }

    #[test]
    fn plan_produces_valid_options() {
        let g = chung_lu(400, 6.0, 2.2, 9).to_csr();
        let prepared = prepared_on(&g, 0, 200, 4);
        let plan = plan_query(&prepared, &DeviceConfig::alveo_u200());
        assert!(plan.options.validate().is_empty(), "{:?}", plan.options.validate());
        assert!(!plan.rationale.is_empty());
        assert!(plan.fits_device());
        assert_eq!(plan.options.batch_strategy, BatchStrategy::LongestFirst);
        assert_eq!(plan.options.verification, VerificationPipeline::Dataflow);
    }

    #[test]
    fn small_pruned_graphs_enable_caching() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]);
        let prepared = prepared_on(&g, 0, 5, 4);
        let plan = plan_query(&prepared, &DeviceConfig::alveo_u200());
        assert!(plan.options.use_cache);
        assert!(plan.areas.graph_cache_bytes > 0);
        assert!(plan.areas.barrier_cache_bytes > 0);
    }

    #[test]
    fn tiny_device_disables_caching_for_large_graphs() {
        let g = chung_lu(3_000, 8.0, 2.2, 5).to_csr();
        // Use a hop constraint that keeps most of the graph after Pre-BFS.
        let prepared = prepared_on(&g, 0, 1_500, 8);
        let mut config = DeviceConfig::tiny_for_tests();
        config.bram_bytes = 16 * 1024;
        let plan = plan_query(&prepared, &config);
        if prepared.graph.num_edges() * 4 > config.bram_bytes / 2 {
            assert!(!plan.options.use_cache);
            assert_eq!(plan.areas.graph_cache_bytes, 0);
        }
        assert!(plan.options.validate().is_empty());
    }

    #[test]
    fn tiny_queries_get_small_buffer_areas() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let prepared = prepared_on(&g, 0, 3, 3);
        let plan = plan_query(&prepared, &DeviceConfig::alveo_u200());
        assert_eq!(plan.options.buffer_capacity, 256, "clamped to the minimum");
        assert!(plan.rationale.iter().any(|r| r.contains("shrunk") || r.contains("sized")));
    }

    #[test]
    fn theta1_never_exceeds_the_buffer_capacity() {
        for n in [50usize, 200, 800] {
            let g = chung_lu(n, 5.0, 2.2, n as u64).to_csr();
            let prepared = prepared_on(&g, 0, (n / 2) as u32, 5);
            let plan = plan_query(&prepared, &DeviceConfig::alveo_u200());
            assert!(plan.options.dram_fetch_batch <= plan.options.buffer_capacity);
        }
    }

    #[test]
    fn planned_options_run_and_agree_with_default_options() {
        let g = chung_lu(250, 5.0, 2.2, 77).to_csr();
        let prepared = prepared_on(&g, 3, 120, 4);
        let device = DeviceConfig::alveo_u200();
        let plan = plan_query(&prepared, &device);
        let planned = run_prepared(&prepared, plan.options.clone(), &device);
        let default = run_prepared(&prepared, PefpVariant::Full.engine_options(), &device);
        assert_eq!(planned.num_paths, default.num_paths);
    }

    #[test]
    fn round_down_pow2_behaves_at_boundaries() {
        assert_eq!(round_down_pow2(0), 1);
        assert_eq!(round_down_pow2(1), 1);
        assert_eq!(round_down_pow2(2), 2);
        assert_eq!(round_down_pow2(3), 2);
        assert_eq!(round_down_pow2(1024), 1024);
        assert_eq!(round_down_pow2(1025), 1024);
    }
}
