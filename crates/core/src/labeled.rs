//! Label-constrained enumeration (the paper's labelled-graph extension).
//!
//! Section I of the paper: "our solutions can be easily extended to solve it
//! in labelled graphs; that is, we can deal with the label constraints in
//! preprocessing stage to filter out the vertices and edges that satisfy the
//! constraints." This module implements exactly that extension: the label
//! constraint is applied *before* Pre-BFS, producing a filtered graph on which
//! the unmodified PEFP pipeline runs. Endpoints are always admissible, so a
//! query like "paths between user A and user B passing only through verified
//! accounts" maps directly onto [`run_labeled_query`].

use crate::preprocess::PreparedQuery;
use crate::result::PefpRunResult;
use crate::variants::{run_prepared, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::labels::{LabelConstraint, VertexLabels};
use pefp_graph::{induce_subgraph, CsrGraph, VertexId};
use std::time::Instant;

/// Applies the label constraint to `g`, keeping the endpoints regardless of
/// their labels, and returns the filtered graph together with the id mapping.
///
/// The returned graph uses dense new ids; use the mapping to translate the
/// query endpoints before preprocessing and result paths afterwards.
pub fn filter_by_labels(
    g: &CsrGraph,
    labels: &VertexLabels,
    constraint: &LabelConstraint,
    s: VertexId,
    t: VertexId,
) -> pefp_graph::InducedSubgraph {
    assert!(labels.covers(g), "labelling must cover every vertex of the graph");
    induce_subgraph(g, |v| v == s || v == t || constraint.admits(labels.label(v)))
}

/// Runs a label-constrained PEFP query: only paths whose *intermediate*
/// vertices satisfy `constraint` are enumerated.
///
/// Returns the run result with paths expressed in the original graph ids. The
/// reported preprocessing time includes the label filtering pass (it is part
/// of the host preprocessing stage, as prescribed by the paper).
#[allow(clippy::too_many_arguments)]
pub fn run_labeled_query(
    g: &CsrGraph,
    labels: &VertexLabels,
    constraint: &LabelConstraint,
    s: VertexId,
    t: VertexId,
    k: u32,
    variant: PefpVariant,
    device: &DeviceConfig,
) -> PefpRunResult {
    let filter_start = Instant::now();
    // Fast path: a trivial constraint leaves the graph untouched.
    if constraint.is_trivial() {
        return crate::variants::run_query(g, s, t, k, variant, device);
    }
    let filtered = filter_by_labels(g, labels, constraint, s, t);
    let filter_millis = filter_start.elapsed().as_secs_f64() * 1e3;

    let new_s = filtered.to_new(s).expect("s is force-kept by the label filter");
    let new_t = filtered.to_new(t).expect("t is force-kept by the label filter");
    let prep: PreparedQuery = crate::variants::prepare(&filtered.graph, new_s, new_t, k, variant);
    let mut result = run_prepared(&prep, variant.engine_options(), device);

    // Fold the label-filter time into the preprocessing phase and translate
    // the result paths back through both id mappings (label filter ∘ Pre-BFS).
    result.preprocess_millis += filter_millis;
    result.paths = result.paths.iter().map(|p| filtered.translate_path(p)).collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::labels::Label;
    use pefp_graph::paths::canonicalize;

    /// Oracle: naive enumeration on the label-filtered graph.
    fn oracle(
        g: &CsrGraph,
        labels: &VertexLabels,
        constraint: &LabelConstraint,
        s: VertexId,
        t: VertexId,
        k: u32,
    ) -> Vec<Vec<VertexId>> {
        let filtered = filter_by_labels(g, labels, constraint, s, t);
        let ns = filtered.to_new(s).unwrap();
        let nt = filtered.to_new(t).unwrap();
        let paths = naive_dfs_enumerate(&filtered.graph, ns, nt, k);
        canonicalize(paths.iter().map(|p| filtered.translate_path(p)).collect())
    }

    fn labelled_sample() -> (CsrGraph, VertexLabels) {
        // Two parallel corridors 0 -> {1,2} -> 5 and 0 -> {3,4} -> 5, with the
        // upper corridor labelled 1 and the lower labelled 2.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (0, 5)]);
        let labels = VertexLabels::from_vec(vec![0, 1, 1, 2, 2, 0]);
        (g, labels)
    }

    #[test]
    fn one_of_constraint_restricts_to_the_admissible_corridor() {
        let (g, labels) = labelled_sample();
        let constraint = LabelConstraint::OneOf(vec![1]);
        let device = DeviceConfig::alveo_u200();
        let r = run_labeled_query(
            &g,
            &labels,
            &constraint,
            VertexId(0),
            VertexId(5),
            4,
            PefpVariant::Full,
            &device,
        );
        // Direct edge 0 -> 5 (no intermediates) + the label-1 corridor.
        assert_eq!(r.num_paths, 2);
        assert_eq!(
            canonicalize(r.paths),
            oracle(&g, &labels, &constraint, VertexId(0), VertexId(5), 4)
        );
    }

    #[test]
    fn none_of_constraint_excludes_the_forbidden_corridor() {
        let (g, labels) = labelled_sample();
        let constraint = LabelConstraint::NoneOf(vec![2]);
        let device = DeviceConfig::alveo_u200();
        let r = run_labeled_query(
            &g,
            &labels,
            &constraint,
            VertexId(0),
            VertexId(5),
            4,
            PefpVariant::Full,
            &device,
        );
        assert_eq!(r.num_paths, 2);
        assert!(r.paths.iter().all(|p| !p.contains(&VertexId(3)) && !p.contains(&VertexId(4))));
    }

    #[test]
    fn trivial_constraint_matches_the_unconstrained_query() {
        let (g, labels) = labelled_sample();
        let device = DeviceConfig::alveo_u200();
        let constrained = run_labeled_query(
            &g,
            &labels,
            &LabelConstraint::Any,
            VertexId(0),
            VertexId(5),
            4,
            PefpVariant::Full,
            &device,
        );
        let plain =
            crate::variants::run_query(&g, VertexId(0), VertexId(5), 4, PefpVariant::Full, &device);
        assert_eq!(canonicalize(constrained.paths), canonicalize(plain.paths));
    }

    #[test]
    fn endpoints_are_admissible_even_with_excluded_labels() {
        let (g, labels) = labelled_sample();
        // Exclude label 0, which is the label of both endpoints.
        let constraint = LabelConstraint::OneOf(vec![1]);
        let device = DeviceConfig::alveo_u200();
        let r = run_labeled_query(
            &g,
            &labels,
            &constraint,
            VertexId(0),
            VertexId(5),
            4,
            PefpVariant::Full,
            &device,
        );
        assert!(r.num_paths > 0, "endpoint labels must not disqualify the query");
    }

    #[test]
    fn matches_the_oracle_on_random_labelled_graphs() {
        use pefp_graph::generators::chung_lu;
        let device = DeviceConfig::alveo_u200();
        for seed in 0..3u64 {
            let g = chung_lu(90, 5.0, 2.2, seed + 900).to_csr();
            let palette: Vec<Label> = vec![0, 1, 2, 3];
            let labels = VertexLabels::cyclic(g.num_vertices(), &palette);
            let constraint = LabelConstraint::OneOf(vec![0, 1]);
            let (s, t, k) = (VertexId(0), VertexId(45), 5);
            let r =
                run_labeled_query(&g, &labels, &constraint, s, t, k, PefpVariant::Full, &device);
            assert_eq!(
                canonicalize(r.paths),
                oracle(&g, &labels, &constraint, s, t, k),
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "labelling must cover")]
    fn short_labelling_is_rejected() {
        let (g, _) = labelled_sample();
        let labels = VertexLabels::uniform(2, 0);
        filter_by_labels(&g, &labels, &LabelConstraint::Any, VertexId(0), VertexId(5));
    }
}
