//! Engine configuration.

use pefp_graph::PlacementPolicy;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag the engine polls between batches.
///
/// The host hands a clone of the token to a running query (via
/// [`EngineOptions::cancel`]) and keeps another; flipping the flag —
/// explicitly through [`CancelToken::cancel`] or implicitly when a
/// `pefp-host` job ticket is dropped — makes the engine stop expanding at the
/// next batch boundary, with `EngineStats::cancelled` set. Clones share one
/// flag; equality is flag identity, so two default tokens are *not* equal.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Wraps an existing shared flag (e.g. one owned by a job ticket).
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken(flag)
    }

    /// Requests cancellation: every engine holding a clone of this token
    /// stops at its next batch boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Order in which batches are drawn from the buffer area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchStrategy {
    /// **Batch-DFS** (Algorithm 4): treat the buffer area as a stack and fetch
    /// from its top, i.e. always process a batch of the *longest* paths first.
    /// Longest-first expansion produces the fewest new intermediate paths
    /// (Observation 1 / Table III of the paper), which minimises buffer
    /// overflows and DRAM spills.
    LongestFirst,
    /// First-in-first-out batching ("always process a batch of the shortest
    /// paths first") — the strawman the Batch-DFS ablation (Fig. 13) compares
    /// against.
    Fifo,
}

/// How the engine's verification module is scheduled on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerificationPipeline {
    /// Basic pipeline (Fig. 6): the three checks (target, barrier, visited)
    /// run back to back for each input, so an input occupies the module for
    /// the full stage depth before the next can enter.
    Basic,
    /// Data-separated dataflow pipeline (Fig. 7): the input is split into
    /// `(path, successor)`, `(path, barrier)` and `(path, successor)` streams
    /// so the three checks run concurrently and a merge stage combines the
    /// verdicts; consecutive inputs enter every cycle.
    Dataflow,
}

/// Tunable parameters of the device-side engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Batching order (Batch-DFS vs FIFO).
    pub batch_strategy: BatchStrategy,
    /// Whether the graph, barrier and intermediate paths are cached in BRAM
    /// (the paper's caching techniques, Section VI-B). With caching disabled
    /// every access is charged at DRAM cost — the Fig. 14 ablation.
    pub use_cache: bool,
    /// Verification scheduling — the Fig. 15 ablation.
    pub verification: VerificationPipeline,
    /// Θ2: capacity of the processing area, in *successor slots* (the number
    /// of one-hop expansions a batch may contain).
    pub processing_capacity: u32,
    /// Capacity of the BRAM buffer area, in paths.
    pub buffer_capacity: usize,
    /// Θ1: number of paths fetched back from DRAM when the buffer runs dry.
    pub dram_fetch_batch: usize,
    /// Collect the actual result paths (`true`) or only count them (`false`);
    /// counting mode avoids result materialisation in the largest sweeps.
    /// Both modes run through the same `PathSink` emission path.
    pub collect_paths: bool,
    /// Stop the enumeration after this many result paths (`None` = enumerate
    /// everything). Backed by the `FirstN` sink combinator, so the engine
    /// stops *expanding* once the cap is reached rather than filtering
    /// afterwards; `EngineStats::early_terminated` records that a run was cut
    /// short.
    pub max_results: Option<u64>,
    /// Co-operative cancellation: when set, the engine checks the token
    /// between batches and abandons the enumeration once it is cancelled
    /// (`EngineStats::cancelled`). `None` (the default) runs to completion.
    /// The host runtime wires a dropped job ticket's flag through here so an
    /// abandoned query stops consuming its compute unit.
    pub cancel: Option<CancelToken>,
    /// Simulated-cycle watchdog: when the device's kernel cycle count exceeds
    /// this budget at a batch boundary, the engine declares the CU hung
    /// ([`pefp_fpga::FaultKind::CuHang`]) and aborts the run with
    /// `EngineStats::device_fault` set. `None` (the default) trusts the CU to
    /// make progress — the pre-fault behaviour.
    pub cycle_budget: Option<u64>,
    /// DRAM layout of the subgraph's adjacency rows. Only observable when
    /// the device *charges* banked DRAM stalls and the graph is not cached
    /// in BRAM; it changes charged conflict cycles, never results (see
    /// [`pefp_graph::RowPlacement`]).
    pub bank_placement: PlacementPolicy,
}

impl EngineOptions {
    /// The full PEFP configuration used for the headline results.
    pub fn pefp_default() -> Self {
        EngineOptions {
            batch_strategy: BatchStrategy::LongestFirst,
            use_cache: true,
            verification: VerificationPipeline::Dataflow,
            processing_capacity: 1024,
            buffer_capacity: 8192,
            dram_fetch_batch: 4096,
            collect_paths: true,
            max_results: None,
            cancel: None,
            cycle_budget: None,
            bank_placement: PlacementPolicy::Natural,
        }
    }

    /// Sanity-checks the option values, returning human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.processing_capacity == 0 {
            problems.push("processing_capacity (Θ2) must be positive".to_string());
        }
        if self.buffer_capacity == 0 {
            problems.push("buffer_capacity must be positive".to_string());
        }
        if self.dram_fetch_batch == 0 {
            problems.push("dram_fetch_batch (Θ1) must be positive".to_string());
        }
        if self.dram_fetch_batch > self.buffer_capacity {
            problems.push("Θ1 must not exceed the buffer capacity".to_string());
        }
        problems
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::pefp_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_valid_and_full_featured() {
        let o = EngineOptions::default();
        assert!(o.validate().is_empty());
        assert_eq!(o.batch_strategy, BatchStrategy::LongestFirst);
        assert!(o.use_cache);
        assert_eq!(o.verification, VerificationPipeline::Dataflow);
    }

    #[test]
    fn validation_flags_bad_capacities() {
        let o = EngineOptions {
            processing_capacity: 0,
            buffer_capacity: 0,
            dram_fetch_batch: 0,
            ..EngineOptions::default()
        };
        assert_eq!(o.validate().len(), 3);

        let defaults = EngineOptions::default();
        let o = EngineOptions { dram_fetch_batch: defaults.buffer_capacity + 1, ..defaults };
        assert_eq!(o.validate().len(), 1);
    }

    #[test]
    fn cancel_tokens_share_their_flag_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        // Equality is flag identity: clones agree, fresh tokens differ.
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
    }
}
