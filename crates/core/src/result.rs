//! Result and statistics types returned by the engine and the high-level
//! query runner.

use pefp_fpga::DeviceReport;
use pefp_graph::paths::Path;
use serde::{Deserialize, Serialize};

/// Counters describing what the engine did during one query, independent of
/// the device cost model (useful for Table III style experiments and for
/// explaining *why* a configuration is slower).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of batches processed (iterations of the outer loop).
    pub batches: u64,
    /// Number of (path, successor) expansion inputs verified.
    pub expansions: u64,
    /// Number of intermediate paths that passed verification and were written
    /// back to the buffer.
    pub intermediate_paths: u64,
    /// Number of result paths emitted.
    pub results: u64,
    /// Expansions rejected by the barrier check.
    pub pruned_by_barrier: u64,
    /// Expansions rejected by the visited check.
    pub pruned_by_visited: u64,
    /// Peak number of paths resident in the buffer area.
    pub peak_buffer_paths: usize,
    /// Peak number of paths spilled to DRAM at any one time.
    pub peak_dram_paths: usize,
    /// Whether the enumeration was cut short by the result sink (a `FirstN`
    /// cap or `EngineOptions::max_results`); when set, `results` is the
    /// number of paths emitted before termination, not the full count.
    pub early_terminated: bool,
    /// Whether the enumeration was abandoned through the
    /// [`crate::CancelToken`] in `EngineOptions::cancel` (polled between
    /// batches). Cancelled runs also set `early_terminated`.
    pub cancelled: bool,
    /// Device fault that aborted the run: a transfer-checksum fault latched
    /// by the simulated card, or a [`pefp_fpga::FaultKind::CuHang`] raised by
    /// the engine's cycle watchdog (`EngineOptions::cycle_budget`). A faulted
    /// run's results and timings must be discarded; faulted runs also set
    /// `early_terminated`.
    pub device_fault: Option<pefp_fpga::FaultEvent>,
}

/// Raw output of one engine run (device ids).
#[derive(Debug, Clone, Default)]
pub struct EngineOutput {
    /// Result paths in device vertex ids. Filled only by the collect-mode
    /// wrapper ([`crate::PefpEngine::run`] with `collect_paths = true`);
    /// empty in counting mode and for sink-streaming runs, where results
    /// flow through the caller's `PathSink` instead.
    pub paths: Vec<Path>,
    /// Number of result paths emitted (always filled, in every mode).
    pub num_paths: u64,
    /// Behavioural counters.
    pub stats: EngineStats,
}

/// Complete result of a high-level PEFP query (preprocessing + device run).
#[derive(Debug, Clone)]
pub struct PefpRunResult {
    /// Result paths translated back to original graph vertex ids. Empty for
    /// counting-mode and sink-streaming runs (`run_prepared_with_sink` /
    /// `run_query_with_sink`), where paths flow through the caller's sink.
    pub paths: Vec<Path>,
    /// Number of result paths.
    pub num_paths: u64,
    /// Host wall-clock preprocessing time in milliseconds (the paper's `T1`).
    pub preprocess_millis: f64,
    /// Simulated device query time in milliseconds (the paper's `T2`),
    /// including the PCIe transfer of the prepared query.
    pub query_millis: f64,
    /// Host wall-clock time of the software engine run in milliseconds
    /// (reported for reference; not a paper metric).
    pub host_engine_millis: f64,
    /// Full device report (cycles, traffic counters, BRAM usage).
    pub device: DeviceReport,
    /// Engine behavioural counters.
    pub stats: EngineStats,
}

impl PefpRunResult {
    /// Total time `T = T1 + T2` in milliseconds, as defined in Section VII-A.
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.query_millis
    }

    /// The fault that aborted this run, if any: the engine-observed fault
    /// when the watchdog or batch-boundary poll caught it, else any fault the
    /// device latched after the engine's last poll (e.g. on the final batch
    /// or the result DMA). `None` means the run is trustworthy.
    pub fn device_fault(&self) -> Option<pefp_fpga::FaultEvent> {
        self.stats.device_fault.or(self.device.fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_fpga::MemoryCounters;

    #[test]
    fn total_time_is_the_sum_of_phases() {
        let r = PefpRunResult {
            paths: Vec::new(),
            num_paths: 0,
            preprocess_millis: 1.5,
            query_millis: 2.5,
            host_engine_millis: 0.1,
            device: DeviceReport {
                cycles: 0,
                kernel_millis: 0.0,
                pcie_millis: 0.0,
                total_millis: 0.0,
                counters: MemoryCounters::default(),
                bram_used: 0,
                bram_capacity: 0,
                dram_cycles: 0,
                contention_cycles: 0,
                bank_conflict_cycles: 0,
                turnaround_cycles: 0,
                fault: None,
                injected_stall_cycles: 0,
            },
            stats: EngineStats::default(),
        };
        assert!((r.total_millis() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn engine_output_defaults_are_empty() {
        let o = EngineOutput::default();
        assert_eq!(o.num_paths, 0);
        assert!(o.paths.is_empty());
        assert_eq!(o.stats, EngineStats::default());
    }
}
