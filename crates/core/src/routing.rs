//! Adaptive engine router: cost-based CPU/device query planning.
//!
//! The paper deploys one engine — the PEFP bitstream — for every query, but
//! its own evaluation (§VII) shows the win is workload-dependent: tiny pruned
//! subgraphs are dominated by PCIe transfer and preprocessing, while
//! hub-heavy high-`k` queries are where the device pays off. This module
//! turns the Pre-BFS product the pipeline already computes per query into a
//! *routing decision*: run the query CPU-direct (BC-DFS or JOIN, skipping
//! device transfer entirely), on a single device CU, or as multi-CU batch
//! work.
//!
//! The cost model is deliberately simple and fully deterministic: each engine
//! gets a predicted latency in microseconds, linear in a per-engine *work
//! proxy* derived from the walk-counting bounds of
//! [`QueryEstimate`](crate::counting::QueryEstimate) on the pruned subgraph
//! `G'`. The coefficients live in a [`RoutingTable`] calibrated offline by
//! the `routing_table` binary (committed as `docs/routing_table.json`) — the
//! router itself never measures anything, so the same table and the same
//! query always produce the same decision, with a rationale line per step
//! like [`plan_query`](crate::planner::plan_query).
//!
//! Routing never changes answers: every routable engine streams through the
//! same [`PathSink`](pefp_graph::sink::PathSink) pipeline and enumerates the
//! exact same path set. Only the latency (and which resource pool the query
//! occupies) differs.
//!
//! Dependency note: this crate only *scores* engines. Actually dispatching a
//! CPU engine lives in `pefp-host`, which depends on `pefp-baselines`; the
//! (de)serialisation of [`RoutingTable`] lives in `pefp-workload`, which owns
//! the hand-rolled JSON vocabulary.

use crate::counting::{count_walks_from_checked, QueryEstimate};
use crate::preprocess::PreparedQuery;

/// The engine a query is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// CPU-direct BC-DFS (`pefp-baselines`), skipping device transfer.
    CpuBcDfs,
    /// CPU-direct JOIN (`pefp-baselines`), skipping device transfer.
    CpuJoin,
    /// The simulated PEFP device, one compute unit.
    DeviceSingleCu,
    /// The simulated PEFP device, placed as multi-CU batch work.
    DeviceMultiCu,
}

impl EngineChoice {
    /// Whether the choice runs on the CPU-worker pool (no CU lease, no
    /// transfer).
    pub fn is_cpu(&self) -> bool {
        matches!(self, EngineChoice::CpuBcDfs | EngineChoice::CpuJoin)
    }

    /// Stable lower-case name, used in stats, JSON and rationale lines.
    pub fn name(&self) -> &'static str {
        match self {
            EngineChoice::CpuBcDfs => "bc_dfs",
            EngineChoice::CpuJoin => "join",
            EngineChoice::DeviceSingleCu => "device",
            EngineChoice::DeviceMultiCu => "device_multi_cu",
        }
    }

    /// All routable engines, in deterministic preference order (CPU first:
    /// on a cost tie the cheaper infrastructure wins).
    pub fn all() -> [EngineChoice; 4] {
        [
            EngineChoice::CpuBcDfs,
            EngineChoice::CpuJoin,
            EngineChoice::DeviceSingleCu,
            EngineChoice::DeviceMultiCu,
        ]
    }
}

/// The deterministic feature vector the router scores. Everything here is a
/// by-product of preprocessing — no engine is run to produce it.
#[derive(Debug, Clone)]
pub struct RouteFeatures {
    /// `|V(G')|` — vertices of the pruned subgraph.
    pub vertices: usize,
    /// `|E(G')|` — edges of the pruned subgraph.
    pub edges: usize,
    /// Hop constraint.
    pub k: u32,
    /// Bytes a device placement must ship over PCIe (CSR + barrier + params).
    pub transfer_bytes: usize,
    /// `false` when preprocessing already proved the result set empty.
    pub feasible: bool,
    /// Walk-count bounds on `G'` (with the saturation flag).
    pub estimate: QueryEstimate,
    /// `histogram[d]` = number of vertices whose barrier is `d`, for
    /// `d in 0..=k+1` (the `k + 1` bucket holds the unreachable vertices).
    pub barrier_histogram: Vec<u64>,
    /// DFS-style work proxy: predicted intermediate-path volume, the unit the
    /// per-engine cost coefficients are calibrated in.
    pub dfs_work: f64,
    /// JOIN work proxy: walk volume to half depth (the prefix side of the
    /// meet-in-the-middle split) plus the predicted join output volume.
    pub join_work: f64,
}

impl RouteFeatures {
    /// Computes the feature vector for a prepared query. Costs one extra
    /// half-depth walk DP on `G'` — negligible next to Pre-BFS itself.
    pub fn compute(prepared: &PreparedQuery) -> RouteFeatures {
        let g = &prepared.graph;
        let estimate = QueryEstimate::compute(g, prepared.s, prepared.t, prepared.k);
        let k = prepared.k;
        let mut barrier_histogram = vec![0u64; k as usize + 2];
        for &b in &prepared.barrier {
            barrier_histogram[(b as usize).min(k as usize + 1)] += 1;
        }
        let (half_walks, half_saturated) = count_walks_from_checked(g, prepared.s, k.div_ceil(2));
        let dfs_work = estimate.max_intermediate_paths as f64;
        let join_work = if half_saturated {
            u64::MAX as f64
        } else {
            half_walks as f64 + estimate.max_results as f64
        };
        RouteFeatures {
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            k,
            transfer_bytes: prepared.transfer_bytes(),
            feasible: prepared.feasible,
            estimate,
            barrier_histogram,
            dfs_work,
            join_work,
        }
    }

    /// Vertices that can reach the target within the budget (`bar <= k`).
    pub fn reachable_vertices(&self) -> u64 {
        self.barrier_histogram[..self.barrier_histogram.len() - 1].iter().sum()
    }
}

/// Calibrated cost coefficients, loaded from `docs/routing_table.json` (or
/// [`RoutingTable::builtin`], which mirrors the committed file).
///
/// All latencies are in microseconds of *modelled query latency* — wall time
/// for the CPU engines, `T1 + transfer + T2` (simulated device time) for the
/// device — per work unit of the [`RouteFeatures`] proxies. The CPU
/// coefficients are normalised by the bench harness's runner-speed
/// calibration, so the committed table is machine-independent up to the
/// aggressive rounding the fit applies.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    /// Table format version.
    pub version: u32,
    /// BC-DFS: microseconds per DFS work unit.
    pub bcdfs_us_per_unit: f64,
    /// BC-DFS: fixed per-query overhead in microseconds.
    pub bcdfs_fixed_us: f64,
    /// JOIN: microseconds per JOIN work unit.
    pub join_us_per_unit: f64,
    /// JOIN: fixed per-query overhead (two BFS passes, middle cut).
    pub join_fixed_us: f64,
    /// Device: microseconds of simulated kernel time per DFS work unit.
    pub device_us_per_unit: f64,
    /// Device: fixed per-query overhead (kernel launch, pipeline fill).
    pub device_fixed_us: f64,
    /// PCIe transfer model: microseconds per KiB shipped.
    pub transfer_us_per_kib: f64,
    /// DFS work beyond this is "beyond CPU scale": the materialising CPU
    /// engines are not trusted past it and the query is device-tier.
    pub cpu_work_ceiling: f64,
    /// Device work at or above this prefers multi-CU batch placement.
    pub multi_cu_work_cutoff: f64,
    /// Fraction of linear speedup a multi-CU placement actually achieves.
    pub multi_cu_efficiency: f64,
}

impl RoutingTable {
    /// The committed calibration — byte-for-byte the table of
    /// `docs/routing_table.json`, as fitted by `routing_table --write`
    /// (`routing_table --check` fails if the two drift apart). Used when no
    /// table file is supplied.
    pub fn builtin() -> RoutingTable {
        RoutingTable {
            version: 1,
            bcdfs_us_per_unit: 0.00025,
            bcdfs_fixed_us: 3.3,
            join_us_per_unit: 0.0066,
            join_fixed_us: 38.0,
            device_us_per_unit: 0.0000075,
            device_fixed_us: 12.0,
            transfer_us_per_kib: 0.014,
            cpu_work_ceiling: 2e8,
            multi_cu_work_cutoff: 1e6,
            multi_cu_efficiency: 0.85,
        }
    }

    /// Modelled PCIe transfer cost in microseconds for a payload.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        self.transfer_us_per_kib * (bytes as f64 / 1024.0)
    }

    /// Basic sanity validation; returns one message per violated invariant.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let positive = [
            ("bcdfs_us_per_unit", self.bcdfs_us_per_unit),
            ("join_us_per_unit", self.join_us_per_unit),
            ("device_us_per_unit", self.device_us_per_unit),
            ("transfer_us_per_kib", self.transfer_us_per_kib),
            ("cpu_work_ceiling", self.cpu_work_ceiling),
            ("multi_cu_work_cutoff", self.multi_cu_work_cutoff),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                problems.push(format!("{name} must be positive and finite, got {value}"));
            }
        }
        for (name, value) in
            [("bcdfs_fixed_us", self.bcdfs_fixed_us), ("join_fixed_us", self.join_fixed_us)]
        {
            if !(value >= 0.0 && value.is_finite()) {
                problems.push(format!("{name} must be non-negative, got {value}"));
            }
        }
        if !(self.device_fixed_us >= 0.0 && self.device_fixed_us.is_finite()) {
            problems.push(format!(
                "device_fixed_us must be non-negative, got {}",
                self.device_fixed_us
            ));
        }
        if !(self.multi_cu_efficiency > 0.0 && self.multi_cu_efficiency <= 1.0) {
            problems.push(format!(
                "multi_cu_efficiency must be in (0, 1], got {}",
                self.multi_cu_efficiency
            ));
        }
        problems
    }
}

impl Default for RoutingTable {
    fn default() -> Self {
        RoutingTable::builtin()
    }
}

/// Extra device compute per banked-charging run, as a fraction. When the
/// runtime charges bank-conflict and turnaround stalls to CU clocks
/// ([`RouteContext::charge_banked`]), every device placement pays conflict
/// stalls the uncharged model never saw; the router folds that in as a
/// constant fraction of device compute. The value is a conservative
/// mid-point of the charged-over-uncharged cycle inflation observed on the
/// bench batches — deliberately a constant, not a table field, so the
/// committed `docs/routing_table.json` calibration stays untouched.
pub const BANK_CONFLICT_COST_FRACTION: f64 = 0.08;

/// Runtime context the router needs beyond the query itself.
#[derive(Debug, Clone, Copy)]
pub struct RouteContext {
    /// Compute units available for multi-CU placement.
    pub compute_units: usize,
    /// Whether the runtime charges banked DRAM stalls to CU clocks; adds the
    /// [`BANK_CONFLICT_COST_FRACTION`] term to the device engines' costs.
    pub charge_banked: bool,
}

impl Default for RouteContext {
    fn default() -> Self {
        RouteContext { compute_units: 1, charge_banked: false }
    }
}

/// Predicted per-engine latencies in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct EngineCosts {
    /// CPU BC-DFS.
    pub bc_dfs_us: f64,
    /// CPU JOIN.
    pub join_us: f64,
    /// Device, single CU (includes the transfer model).
    pub device_us: f64,
    /// Device, multi-CU batch placement (`f64::INFINITY` with one CU).
    pub device_multi_us: f64,
}

impl EngineCosts {
    /// The predicted cost of `choice`.
    pub fn of(&self, choice: EngineChoice) -> f64 {
        match choice {
            EngineChoice::CpuBcDfs => self.bc_dfs_us,
            EngineChoice::CpuJoin => self.join_us,
            EngineChoice::DeviceSingleCu => self.device_us,
            EngineChoice::DeviceMultiCu => self.device_multi_us,
        }
    }
}

/// The router's verdict for one query.
#[derive(Debug, Clone)]
pub struct RouteDecision {
    /// The engine the query should run on.
    pub choice: EngineChoice,
    /// The feature vector the decision was made from.
    pub features: RouteFeatures,
    /// Predicted latency of every engine.
    pub costs: EngineCosts,
    /// Predicted latency of the chosen engine, in microseconds. This is the
    /// admission/LPT ordering key — a real cost estimate instead of the old
    /// `degree × k` proxy.
    pub cost_estimate_us: f64,
    /// One line per decision step, in the order they were made.
    pub rationale: Vec<String>,
}

/// Scores every engine for a prepared query and picks the cheapest.
///
/// Deterministic: the same `(prepared, table, ctx)` always yields the same
/// decision. Ties break towards the CPU (cheaper infrastructure), then by
/// [`EngineChoice::all`] order.
pub fn route_query(
    prepared: &PreparedQuery,
    table: &RoutingTable,
    ctx: &RouteContext,
) -> RouteDecision {
    let features = RouteFeatures::compute(prepared);
    let mut rationale = Vec::new();
    rationale.push(format!(
        "G' has {} vertices / {} edges, k = {}; ≤ {} results, dfs work {:.0}, join work {:.0}",
        features.vertices,
        features.edges,
        features.k,
        features.estimate.max_results,
        features.dfs_work,
        features.join_work,
    ));

    let costs = engine_costs(&features, table, ctx);

    // Step 1: preprocessing already proved the result set empty — nothing to
    // enumerate anywhere, so never pay a transfer or a CU lease for it.
    if !features.feasible {
        rationale.push(
            "preprocessing proved the result set empty: trivial CPU completion, no transfer"
                .to_string(),
        );
        return RouteDecision {
            choice: EngineChoice::CpuBcDfs,
            features,
            costs,
            cost_estimate_us: 0.0,
            rationale,
        };
    }

    // Step 2: saturated walk bounds carry no ranking information — both CPU
    // proxies collapsed to u64::MAX. The device's bounded-memory Batch-DFS is
    // the only engine designed for that regime.
    if features.estimate.saturated {
        rationale.push(
            "walk bounds saturated at u64::MAX: magnitude is meaningless, routing device-tier \
             (bounded-memory Batch-DFS)"
                .to_string(),
        );
        let choice = device_tier(&features, table, ctx, &mut rationale);
        let cost_estimate_us = costs.of(choice);
        return RouteDecision { choice, features, costs, cost_estimate_us, rationale };
    }

    // Step 3: beyond the CPU ceiling the materialising CPU engines are not
    // trusted regardless of the linear model's verdict.
    if features.dfs_work > table.cpu_work_ceiling {
        rationale.push(format!(
            "dfs work {:.0} exceeds the CPU ceiling {:.0}: device-tier",
            features.dfs_work, table.cpu_work_ceiling
        ));
        let choice = device_tier(&features, table, ctx, &mut rationale);
        let cost_estimate_us = costs.of(choice);
        return RouteDecision { choice, features, costs, cost_estimate_us, rationale };
    }

    // Step 4: linear cost model, cheapest engine wins; ties prefer CPU.
    rationale.push(format!(
        "predicted µs — bc_dfs {:.1}, join {:.1}, device {:.1} (transfer {:.1}), multi-CU {:.1}",
        costs.bc_dfs_us,
        costs.join_us,
        costs.device_us,
        table.transfer_us(features.transfer_bytes),
        costs.device_multi_us,
    ));
    let mut choice = EngineChoice::CpuBcDfs;
    for candidate in EngineChoice::all() {
        if costs.of(candidate) < costs.of(choice) {
            choice = candidate;
        }
    }
    // When banked charging is live, surface the conflict-cost term in the
    // rationale whenever it changed the outcome: re-score without the term
    // and compare winners.
    if ctx.charge_banked {
        let uncharged =
            engine_costs(&features, table, &RouteContext { charge_banked: false, ..*ctx });
        let mut base_choice = EngineChoice::CpuBcDfs;
        for candidate in EngineChoice::all() {
            if uncharged.of(candidate) < uncharged.of(base_choice) {
                base_choice = candidate;
            }
        }
        if base_choice != choice {
            rationale.push(format!(
                "bank-conflict cost term (+{:.0}% device compute under banked charging) flips \
                 the decision: {} → {}",
                BANK_CONFLICT_COST_FRACTION * 100.0,
                base_choice.name(),
                choice.name(),
            ));
        }
    }
    rationale.push(format!("cheapest engine: {} at {:.1} µs", choice.name(), costs.of(choice)));
    let cost_estimate_us = costs.of(choice);
    RouteDecision { choice, features, costs, cost_estimate_us, rationale }
}

/// Picks between single- and multi-CU device placement once the query is
/// known to be device-tier.
fn device_tier(
    features: &RouteFeatures,
    table: &RoutingTable,
    ctx: &RouteContext,
    rationale: &mut Vec<String>,
) -> EngineChoice {
    if ctx.compute_units > 1 && features.dfs_work >= table.multi_cu_work_cutoff {
        rationale.push(format!(
            "dfs work {:.0} ≥ multi-CU cutoff {:.0} and {} CUs available: multi-CU batch placement",
            features.dfs_work, table.multi_cu_work_cutoff, ctx.compute_units
        ));
        EngineChoice::DeviceMultiCu
    } else {
        rationale.push("single-CU device placement".to_string());
        EngineChoice::DeviceSingleCu
    }
}

/// Evaluates the linear cost model for every engine.
fn engine_costs(features: &RouteFeatures, table: &RoutingTable, ctx: &RouteContext) -> EngineCosts {
    let transfer = table.transfer_us(features.transfer_bytes);
    let bc_dfs_us = table.bcdfs_fixed_us + table.bcdfs_us_per_unit * features.dfs_work;
    let join_us = table.join_fixed_us + table.join_us_per_unit * features.join_work;
    // Charged bank stalls inflate device compute (and only device compute:
    // the CPU engines never touch the card's DRAM banks).
    let bank_factor = if ctx.charge_banked { 1.0 + BANK_CONFLICT_COST_FRACTION } else { 1.0 };
    let device_compute = table.device_us_per_unit * features.dfs_work * bank_factor;
    let device_us = table.device_fixed_us + transfer + device_compute;
    let device_multi_us =
        if ctx.compute_units > 1 && features.dfs_work >= table.multi_cu_work_cutoff {
            table.device_fixed_us
                + transfer
                + device_compute / (ctx.compute_units as f64 * table.multi_cu_efficiency)
        } else {
            f64::INFINITY
        };
    EngineCosts { bc_dfs_us, join_us, device_us, device_multi_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::pre_bfs;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::{CsrGraph, VertexId};

    fn route(g: &CsrGraph, s: u32, t: u32, k: u32, cus: usize) -> RouteDecision {
        let prepared = pre_bfs(g, VertexId(s), VertexId(t), k);
        route_query(
            &prepared,
            &RoutingTable::builtin(),
            &RouteContext { compute_units: cus, charge_banked: false },
        )
    }

    #[test]
    fn builtin_table_is_valid() {
        assert!(RoutingTable::builtin().validate().is_empty());
    }

    #[test]
    fn tiny_queries_route_to_cpu() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let decision = route(&g, 0, 3, 3, 4);
        assert!(decision.choice.is_cpu(), "tiny diamond should skip the device: {decision:?}");
        assert!(!decision.rationale.is_empty());
    }

    #[test]
    fn infeasible_queries_cost_nothing() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let decision = route(&g, 0, 3, 5, 4);
        assert!(decision.choice.is_cpu());
        assert_eq!(decision.cost_estimate_us, 0.0);
        assert!(decision.rationale.iter().any(|r| r.contains("empty")));
    }

    #[test]
    fn saturated_estimates_are_device_tier() {
        // Complete K12 at k = 30: the walk DP saturates u64.
        let mut edges = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = CsrGraph::from_edges(12, &edges);
        let decision = route(&g, 0, 1, 30, 4);
        assert!(decision.features.estimate.saturated);
        assert!(!decision.choice.is_cpu(), "saturated must be device-tier: {decision:?}");
        assert!(decision.rationale.iter().any(|r| r.contains("saturated")));
    }

    #[test]
    fn multi_cu_needs_more_than_one_cu() {
        let mut edges = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = CsrGraph::from_edges(12, &edges);
        let single = route(&g, 0, 1, 30, 1);
        assert_eq!(single.choice, EngineChoice::DeviceSingleCu);
        let multi = route(&g, 0, 1, 30, 4);
        assert_eq!(multi.choice, EngineChoice::DeviceMultiCu);
    }

    #[test]
    fn decisions_are_deterministic() {
        let g = chung_lu(500, 6.0, 2.2, 13).to_csr();
        for &(s, t, k) in &[(0u32, 250u32, 3u32), (1, 100, 5), (7, 400, 6)] {
            let a = route(&g, s, t, k, 4);
            let b = route(&g, s, t, k, 4);
            assert_eq!(a.choice, b.choice);
            assert_eq!(a.rationale, b.rationale);
            assert_eq!(a.cost_estimate_us, b.cost_estimate_us);
        }
    }

    #[test]
    fn barrier_histogram_covers_every_vertex() {
        let g = chung_lu(300, 5.0, 2.2, 3).to_csr();
        let prepared = pre_bfs(&g, VertexId(0), VertexId(150), 4);
        let features = RouteFeatures::compute(&prepared);
        let total: u64 = features.barrier_histogram.iter().sum();
        assert_eq!(total, prepared.graph.num_vertices() as u64);
        assert!(features.reachable_vertices() <= total);
    }

    #[test]
    fn cost_model_is_monotone_in_work() {
        let table = RoutingTable::builtin();
        let ctx = RouteContext { compute_units: 1, charge_banked: false };
        let small = RouteFeatures {
            vertices: 10,
            edges: 20,
            k: 3,
            transfer_bytes: 1024,
            feasible: true,
            estimate: QueryEstimate {
                max_results: 5,
                max_intermediate_paths: 50,
                saturated: false,
            },
            barrier_histogram: vec![0; 5],
            dfs_work: 50.0,
            join_work: 20.0,
        };
        let mut big = small.clone();
        big.dfs_work = 5e6;
        big.join_work = 1e6;
        let small_costs = engine_costs(&small, &table, &ctx);
        let big_costs = engine_costs(&big, &table, &ctx);
        assert!(big_costs.bc_dfs_us > small_costs.bc_dfs_us);
        assert!(big_costs.join_us > small_costs.join_us);
        assert!(big_costs.device_us > small_costs.device_us);
    }

    #[test]
    fn banked_charging_inflates_only_device_costs() {
        let g = chung_lu(400, 6.0, 2.2, 9).to_csr();
        let prepared = pre_bfs(&g, VertexId(0), VertexId(200), 4);
        let table = RoutingTable::builtin();
        let base = route_query(
            &prepared,
            &table,
            &RouteContext { compute_units: 2, charge_banked: false },
        );
        let charged =
            route_query(&prepared, &table, &RouteContext { compute_units: 2, charge_banked: true });
        assert!(base.features.feasible && base.features.dfs_work > 0.0);
        // CPU engines never touch the card's DRAM banks.
        assert_eq!(base.costs.bc_dfs_us, charged.costs.bc_dfs_us);
        assert_eq!(base.costs.join_us, charged.costs.join_us);
        assert!(charged.costs.device_us > base.costs.device_us);
    }

    #[test]
    fn conflict_cost_flip_is_explained_in_the_rationale() {
        let g = chung_lu(400, 6.0, 2.2, 9).to_csr();
        let prepared = pre_bfs(&g, VertexId(0), VertexId(200), 4);
        let mut table = RoutingTable::builtin();
        let base = route_query(&prepared, &table, &RouteContext::default());
        assert!(base.features.feasible && !base.features.estimate.saturated);
        assert!(base.features.dfs_work <= table.cpu_work_ceiling);
        // Pin the BC-DFS cost halfway between the uncharged and charged
        // device cost, so the conflict-cost term alone decides the winner.
        let transfer = table.transfer_us(base.features.transfer_bytes);
        let compute = base.costs.device_us - table.device_fixed_us - transfer;
        assert!(compute > 0.0);
        table.bcdfs_us_per_unit = 1e-15;
        table.bcdfs_fixed_us =
            table.device_fixed_us + transfer + compute * (1.0 + BANK_CONFLICT_COST_FRACTION / 2.0);
        table.join_fixed_us = 1e9; // keep JOIN out of the race

        let ctx = RouteContext { compute_units: 1, charge_banked: false };
        let uncharged = route_query(&prepared, &table, &ctx);
        assert_eq!(uncharged.choice, EngineChoice::DeviceSingleCu);
        assert!(!uncharged.rationale.iter().any(|r| r.contains("bank-conflict")));

        let charged =
            route_query(&prepared, &table, &RouteContext { compute_units: 1, charge_banked: true });
        assert_eq!(charged.choice, EngineChoice::CpuBcDfs);
        assert!(
            charged.rationale.iter().any(|r| r.contains("bank-conflict cost term")),
            "flip must be explained: {:?}",
            charged.rationale
        );
    }
}
