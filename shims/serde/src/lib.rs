//! Offline stand-in for the real `serde` crate.
//!
//! Provides marker `Serialize`/`Deserialize` traits and re-exports the no-op
//! derive macros from the sibling `serde_derive` shim. The traits carry no
//! methods: they exist so that `#[derive(Serialize, Deserialize)]` across the
//! workspace compiles and `T: Serialize` bounds (e.g. in the `serde_json`
//! shim) are satisfiable. Swap these shims for the real crates once registry
//! access is available — no workspace code needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// The real trait is parameterised over a deserialiser lifetime
/// (`Deserialize<'de>`); no code in this workspace names that lifetime, so the
/// shim omits it.
pub trait Deserialize {}
