//! Offline stand-in for the `bytes` crate.
//!
//! Backed by plain `Vec<u8>` — no refcounted zero-copy slicing — but exposes
//! the little-endian cursor API (`Buf` / `BufMut`) the host payload codec
//! uses, with the same advance-on-read semantics as the real crate's
//! `impl Buf for &[u8]`.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Wraps an owned vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes(data)
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Sequential little-endian reads that consume the buffer.
///
/// Like the real crate, reads past the end panic; the payload decoder guards
/// lengths before reading.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_words() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"PEFP");
        buf.put_u16_le(1);
        buf.put_u32_le(0xDEAD_BEEF);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 10);

        let mut cur: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cur.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PEFP");
        assert_eq!(cur.get_u16_le(), 1);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn slicing_and_indexing_work_through_deref() {
        let bytes: Bytes = vec![1, 2, 3, 4].into();
        assert_eq!(&bytes[1..3], &[2, 3]);
        assert_eq!(bytes.to_vec(), vec![1, 2, 3, 4]);
    }
}
