//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "vec size range is empty");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    /// Length shrinking first (halve toward the minimum length, then drop
    /// the last element), then element-wise shrinking at every index.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if value.len() > self.size.start {
            let half = self.size.start.max(value.len() / 2);
            if half < value.len() - 1 {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, item) in value.iter().enumerate() {
            for candidate in self.element.shrink(item) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_bounds_and_element_range() {
        let strat = vec((0u32..5, 0u32..5), 0..20);
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }

    #[test]
    fn vec_shrink_truncates_then_shrinks_elements() {
        let strat = vec(0u32..10, 0..20);
        let proposals = strat.shrink(&vec![4, 4, 4, 4]);
        // Halving and remove-last come first.
        assert_eq!(proposals[0], vec![4, 4]);
        assert_eq!(proposals[1], vec![4, 4, 4]);
        // Every remaining proposal keeps the length but simplifies one slot.
        assert!(proposals[2..].iter().all(|p| p.len() == 4));
        assert!(proposals[2..].iter().all(|p| p.iter().filter(|&&v| v != 4).count() == 1));
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let strat = vec(0u32..10, 3..20);
        // At the minimum length only element shrinks are proposed.
        let proposals = strat.shrink(&vec![0, 0, 0]);
        assert!(proposals.iter().all(|p| p.len() == 3));
        assert!(strat.shrink(&vec![0, 0, 0]).is_empty());
        // One above the minimum: remove-last only, no halving below start.
        let proposals = strat.shrink(&vec![0, 0, 0, 0]);
        assert_eq!(proposals, vec![vec![0, 0, 0]]);
    }
}
