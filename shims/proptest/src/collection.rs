//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "vec size range is empty");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_bounds_and_element_range() {
        let strat = vec((0u32..5, 0u32..5), 0..20);
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }
}
