//! Deterministic RNG driving case generation.

/// SplitMix64-based generator; seeded from the test name and case index so
/// every test sees an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "strategy range is empty");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_test_scoped() {
        let mut a = TestRng::for_case("alpha", 3);
        let mut b = TestRng::for_case("alpha", 3);
        let mut c = TestRng::for_case("beta", 3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
