//! Deterministic RNG driving case generation, plus the greedy shrink loop
//! applied to failing cases.

use crate::strategy::Strategy;
use crate::TestCaseError;

/// Greedily shrinks a failing input: repeatedly asks the strategy for
/// simpler candidates of the current witness and adopts the first one on
/// which `run` still fails, until no candidate fails or `max_iters` `run`
/// invocations are spent. Returns the minimal witness found, the error it
/// produced, and the number of candidate executions used.
///
/// Because candidate lists are ordered most-aggressive-first (see
/// [`Strategy::shrink`]), the loop performs a binary descent: for an integer
/// it first jumps to the range start, then halves the remaining distance,
/// then steps by one — O(log range) adopted steps for a threshold predicate.
/// Identity helper that pins a test-body closure's argument type to the
/// strategy's `Value` through the `Fn` bound — closure parameter inference
/// cannot otherwise see through the `proptest!` macro's generated call site.
pub fn constrain_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    run
}

pub fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut err: TestCaseError,
    max_iters: u32,
    run: &F,
) -> (S::Value, TestCaseError, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut iters = 0u32;
    'descend: loop {
        for candidate in strategy.shrink(&value) {
            if iters >= max_iters {
                break 'descend;
            }
            iters += 1;
            if let Err(candidate_err) = run(candidate.clone()) {
                value = candidate;
                err = candidate_err;
                continue 'descend;
            }
        }
        // Every remaining candidate passes: `value` is a local minimum.
        break;
    }
    (value, err, iters)
}

/// SplitMix64-based generator; seeded from the test name and case index so
/// every test sees an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "strategy range is empty");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_test_scoped() {
        let mut a = TestRng::for_case("alpha", 3);
        let mut b = TestRng::for_case("alpha", 3);
        let mut c = TestRng::for_case("beta", 3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn shrink_failure_finds_the_threshold_witness() {
        // Predicate fails for v >= 17; any failing start must shrink to 17.
        let strategy = 0u32..100;
        let run = |v: u32| {
            if v >= 17 {
                Err(TestCaseError::fail(format!("{v} is too big")))
            } else {
                Ok(())
            }
        };
        for start in [17u32, 18, 42, 99] {
            let initial = run(start).expect_err("every start fails the predicate");
            let (minimal, err, iters) = shrink_failure(&strategy, start, initial, 1024, &run);
            assert_eq!(minimal, 17, "starting from {start}");
            assert!(err.to_string().contains("17 is too big"));
            assert!(iters <= 64, "binary descent stays cheap, used {iters}");
        }
    }

    #[test]
    fn shrink_failure_respects_the_iteration_budget() {
        let strategy = 0u64..u64::MAX;
        let run = |v: u64| {
            if v > 0 {
                Err(TestCaseError::fail("nonzero"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, iters) =
            shrink_failure(&strategy, u64::MAX - 1, TestCaseError::fail("seed"), 3, &run);
        assert_eq!(iters, 3);
        assert!(minimal > 0, "budget ran out before reaching the minimum");
    }

    #[test]
    fn shrink_failure_shrinks_vectors_to_a_minimal_slice() {
        // Fails whenever the vector contains an element >= 5. Truncation
        // drops the tail, element shrinking floors the survivors: the local
        // minimum is [0, 5] (halving/remove-last cannot drop a non-tail
        // element, so the leading slot shrinks to 0 instead of vanishing).
        let strategy = crate::collection::vec(0u32..100, 0..64);
        let run = |v: Vec<u32>| {
            if v.iter().any(|&x| x >= 5) {
                Err(TestCaseError::fail("contains a big element"))
            } else {
                Ok(())
            }
        };
        let seed = vec![1, 9, 3, 88, 2, 41];
        let (minimal, _, _) =
            shrink_failure(&strategy, seed, TestCaseError::fail("seed"), 1024, &run);
        assert_eq!(minimal, vec![0, 5]);
    }
}
