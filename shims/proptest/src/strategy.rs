//! Value-generation strategies and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of an output type.
///
/// Unlike the real crate there is no lazy value tree: `generate` produces the
/// final value directly, and [`Strategy::shrink`] proposes simpler candidate
/// values *after the fact* from a failing one. Strategies that cannot shrink
/// (e.g. [`Strategy::prop_map`] outputs, whose inputs are gone) use the
/// default empty proposal list and simply report the original failure.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler candidates derived from `value`, most
    /// aggressive first. The shrinker greedily accepts the first candidate
    /// that still fails, so aggressive-first ordering (jump to the minimum,
    /// halve the distance, step by one) converges in O(log range) accepted
    /// steps. An empty proposal list means the value cannot shrink further.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }

            /// Candidates toward the range start: the start itself, the
            /// midpoint between start and the value (binary descent), and
            /// the value minus one (final linear step).
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start {
                        out.push(mid);
                    }
                    out.push(*value - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            /// Component-wise shrinking: every proposal simplifies exactly
            /// one component and keeps the others, so a multi-argument
            /// failure shrinks each argument independently.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (G, 5));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = TestRng::for_case("dependent", 0);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }

    #[test]
    fn int_shrink_proposes_start_midpoint_and_decrement() {
        let strat = 10u32..100;
        assert_eq!(strat.shrink(&50), vec![10, 30, 49]);
        assert_eq!(strat.shrink(&11), vec![10]);
        assert_eq!(strat.shrink(&12), vec![10, 11]);
        assert!(strat.shrink(&10).is_empty(), "the range start cannot shrink");
    }

    #[test]
    fn tuple_shrink_simplifies_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        let proposals = strat.shrink(&(4, 6));
        assert!(!proposals.is_empty());
        for (a, b) in proposals {
            let changed_a = a != 4;
            let changed_b = b != 6;
            assert!(changed_a ^ changed_b, "exactly one component changes: ({a}, {b})");
        }
    }

    #[test]
    fn map_and_just_cannot_shrink() {
        let mapped = (0u32..10).prop_map(|v| v * 2);
        assert!(mapped.shrink(&8).is_empty());
        assert!(Just(5u32).shrink(&5).is_empty());
    }
}
