//! Value-generation strategies and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of an output type.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = TestRng::for_case("dependent", 0);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }
}
