//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: range / tuple /
//! `Just` / `collection::vec` strategies, `prop_map` / `prop_flat_map`
//! combinators, the `proptest!` test-definition macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG, so failures
//! reproduce exactly; there is **no shrinking** — a failing case reports the
//! case number and message only.

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::TestRng;

/// Per-test configuration (the used subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Shrinking iteration budget. Present for config-struct compatibility
    /// with the real crate; the shim performs no shrinking.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a proptest case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a test module needs: strategies, config, and the macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Namespace alias so `prop::collection::vec(..)` resolves as it does
    /// under the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    // Internal: config threaded through, one expansion per test fn.
    (@expand $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::for_case(stringify!($name), u64::from(case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest {} failed at case {case}: {err}", stringify!($name));
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two values are not equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
