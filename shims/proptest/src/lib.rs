//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: range / tuple /
//! `Just` / `collection::vec` strategies, `prop_map` / `prop_flat_map`
//! combinators, the `proptest!` test-definition macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG, so failures
//! reproduce exactly.
//!
//! Failing cases are **shrunk** before being reported: the greedy loop in
//! [`test_runner::shrink_failure`] repeatedly asks the strategy for simpler
//! candidates (integers halve toward the range start, vectors truncate toward
//! their minimum length, tuples shrink component-wise) and keeps the first
//! one that still fails, up to `ProptestConfig::max_shrink_iters` candidate
//! executions. The panic message then carries the minimal witness, not just
//! the original random case. Combinator outputs (`prop_map`,
//! `prop_flat_map`) cannot shrink — their inputs are gone — so those report
//! the original failing value unchanged.

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::TestRng;

/// Per-test configuration (the used subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Maximum number of shrink-candidate executions spent minimising a
    /// failing case before reporting whatever witness was reached.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a proptest case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a test module needs: strategies, config, and the macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Namespace alias so `prop::collection::vec(..)` resolves as it does
    /// under the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    // Internal: config threaded through, one expansion per test fn. All the
    // argument strategies are packed into one tuple strategy so a failing
    // case can be shrunk as a unit (component-wise) before being reported.
    (@expand $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($(($strat),)*);
                let run = $crate::test_runner::constrain_runner(&strategy, |($($arg,)*)| {
                    (|| { $body ::std::result::Result::Ok(()) })()
                });
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::for_case(stringify!($name), u64::from(case));
                    let value = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        run(::std::clone::Clone::clone(&value));
                    if let ::std::result::Result::Err(err) = outcome {
                        let (minimal, minimal_err, iters) =
                            $crate::test_runner::shrink_failure(
                                &strategy,
                                value,
                                err,
                                config.max_shrink_iters,
                                &run,
                            );
                        panic!(
                            "proptest {} failed at case {case}: {minimal_err}\n\
                             minimal failing input ({iters} shrink runs): {minimal:?}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two values are not equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
