//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator.
//!
//! The block function is the real ChaCha algorithm at 8 rounds, so the
//! generator has the statistical quality the workspace's deterministic graph
//! generators rely on. The word stream is **not** bit-identical to the real
//! `rand_chacha` crate (seed expansion and buffering differ), which is fine:
//! everything in this repository only requires determinism across runs of the
//! same build, never cross-crate stream compatibility.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// Deterministic ChaCha8-based generator, seedable from a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16]) -> [u32; 16] {
    let mut s = *input;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (out, inp) in s.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    s
}

/// SplitMix64 step, used only to expand the 64-bit seed into a 256-bit key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Block counter (12) and nonce (13..16) start at zero.
        ChaCha8Rng { state, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.buffer = chacha_block(&self.state);
            self.index = 0;
            // 64-bit block counter over words 12 and 13.
            let (lo, carry) = self.state[12].overflowing_add(1);
            self.state[12] = lo;
            if carry {
                self.state[13] = self.state[13].wrapping_add(1);
            }
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(19);
        let mut b = ChaCha8Rng::seed_from_u64(19);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
