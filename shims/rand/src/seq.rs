//! Slice sampling helpers (the used subset of `rand::seq`).

use crate::RngCore;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
