//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly the subset the workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, `gen` / `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom`]'s `choose` / `shuffle`. Integer range sampling uses
//! plain modulo reduction — the bias is negligible for the small ranges the
//! generators draw from and irrelevant for test determinism, which only needs
//! the stream to be stable across runs.

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// Core random number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable construction of a generator from a `u64`, matching
/// `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full generator output
/// (the role of `rand::distributions::Standard`).
pub trait FromRng: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_int_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$t as FromRng>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly from its standard distribution.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(1.0..500.0);
            assert!((1.0..500.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
