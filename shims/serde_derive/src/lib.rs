//! Offline stand-in for the real `serde_derive` crate.
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal shim: the derive macros here emit *marker*
//! implementations (`impl serde::Serialize for T {}`) rather than real
//! serialisation code. That is enough to satisfy `T: Serialize` bounds across
//! the workspace; actual wire formats are provided elsewhere (e.g. the
//! hand-written device payload codec in `pefp-host::binfmt`).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive is attached to, skipping
/// attributes and visibility. Returns `None` for generic types (none exist in
/// this workspace); the caller then emits nothing rather than a broken impl.
fn derived_type_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // `#[attr]` / doc comments: skip the '#' and the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    if let Some(TokenTree::Ident(name)) = iter.next() {
                        if let Some(TokenTree::Punct(p)) = iter.peek() {
                            if p.as_char() == '<' {
                                return None;
                            }
                        }
                        return Some(name.to_string());
                    }
                    return None;
                }
            }
            _ => {}
        }
    }
    None
}

/// Emits `impl serde::Serialize for T {}` for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match derived_type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("shim derive emits valid tokens"),
        None => TokenStream::new(),
    }
}

/// Emits `impl serde::Deserialize for T {}` for the annotated type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match derived_type_name(input) {
        Some(name) => format!("impl ::serde::Deserialize for {name} {{}}")
            .parse()
            .expect("shim derive emits valid tokens"),
        None => TokenStream::new(),
    }
}
