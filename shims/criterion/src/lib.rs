//! Offline stand-in for the `criterion` crate.
//!
//! Presents the same registration API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`) but replaces the statistical machinery
//! with a simple mean-of-N wall-clock measurement printed to stdout. Good
//! enough to keep every bench target compiling and runnable; swap in the real
//! crate for publication-quality numbers.

use std::fmt;
use std::time::Instant;

/// Top-level benchmark context (shim: only carries configuration defaults).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: None }
    }
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput (recorded, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iters: 0, nanos: 0.0, sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { iters: 0, nanos: 0.0, sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group (the real crate emits summary statistics here).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    nanos: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.nanos += started.elapsed().as_nanos() as f64;
        self.iters += self.sample_size as u64;
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        if self.iters == 0 {
            println!("{group}/{id}: no samples");
        } else {
            let mean = self.nanos / self.iters as f64;
            println!("{group}/{id}: mean {:.1} ns over {} iters", mean, self.iters);
        }
    }
}

/// Collects benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
