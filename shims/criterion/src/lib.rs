//! Offline stand-in for the `criterion` crate.
//!
//! Presents the same registration API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`) but replaces the statistical machinery
//! with per-sample wall-clock timing reduced to min / median / mean, printed
//! to stdout. Good enough to keep every bench target compiling and runnable
//! and to make before/after deltas less noisy than a single mean; swap in the
//! real crate for publication-quality numbers.

use std::fmt;
use std::time::Instant;

/// Top-level benchmark context (shim: only carries configuration defaults).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: None }
    }
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput (recorded, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group (the real crate emits summary statistics here).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` individual calls of `routine`, recording one
    /// wall-clock sample per call so the report can quote order statistics.
    ///
    /// Per-sample timing reads the clock twice per call, which adds a fixed
    /// few-tens-of-ns floor to every sample. For sub-microsecond routines
    /// treat absolute values as inflated by that constant; before/after
    /// *deltas* remain fair because both sides pay it. The real criterion
    /// crate amortises this by timing inner batches; this shim prefers the
    /// simpler scheme.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let started = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(started.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        let Some(stats) = SampleStats::from_samples(&self.samples) else {
            println!("{group}/{id}: no samples");
            return;
        };
        let outliers = if stats.outliers > 0 {
            format!(", {} outlier(s) beyond 1.5*IQR", stats.outliers)
        } else {
            String::new()
        };
        println!(
            "{group}/{id}: min {:.1} ns, median {:.1} ns, mean {:.1} ns over {} iters{outliers}",
            stats.min,
            stats.median,
            stats.mean,
            self.samples.len()
        );
    }
}

/// Order statistics over one benchmark's samples (all in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample (mean of the two central samples for even counts).
    pub median: f64,
    /// Arithmetic mean of all samples.
    pub mean: f64,
    /// First quartile (lower median of the sorted samples).
    pub q1: f64,
    /// Third quartile (upper median of the sorted samples).
    pub q3: f64,
    /// Samples outside the Tukey fences `[q1 - 1.5·IQR, q3 + 1.5·IQR]`.
    pub outliers: usize,
}

impl SampleStats {
    /// Reduces a sample set to min/median/mean plus Tukey outlier analysis
    /// (samples beyond 1.5×IQR from the quartiles); `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let n = sorted.len();
        let midpoint = |slice: &[f64]| {
            let m = slice.len();
            if m % 2 == 1 {
                slice[m / 2]
            } else {
                (slice[m / 2 - 1] + slice[m / 2]) / 2.0
            }
        };
        let median = midpoint(&sorted);
        // Quartiles by the median-of-halves rule (the odd central sample
        // belongs to neither half), collapsing to the median for n < 4.
        let (q1, q3) = if n >= 4 {
            (midpoint(&sorted[..n / 2]), midpoint(&sorted[n.div_ceil(2)..]))
        } else {
            (median, median)
        };
        let iqr = q3 - q1;
        let (low_fence, high_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let outliers = sorted.iter().filter(|&&s| s < low_fence || s > high_fence).count();
        Some(SampleStats {
            min: sorted[0],
            median,
            mean: sorted.iter().sum::<f64>() / n as f64,
            q1,
            q3,
            outliers,
        })
    }

    /// Interquartile range of the samples.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Collects benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::SampleStats;

    #[test]
    fn stats_reduce_min_median_mean() {
        let s = SampleStats::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        let odd = SampleStats::from_samples(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(odd.median, 3.0);
        assert!(SampleStats::from_samples(&[]).is_none());
    }

    #[test]
    fn quartiles_follow_the_median_of_halves_rule() {
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.q3, 6.5);
        assert_eq!(s.iqr(), 4.0);
        // Odd count: the central sample belongs to neither half.
        let odd = SampleStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(odd.q1, 1.5);
        assert_eq!(odd.q3, 4.5);
        // Tiny samples collapse the quartiles onto the median (zero IQR).
        let tiny = SampleStats::from_samples(&[1.0, 9.0]).unwrap();
        assert_eq!((tiny.q1, tiny.q3), (tiny.median, tiny.median));
    }

    #[test]
    fn tukey_fences_flag_extreme_samples() {
        // Nine well-behaved samples and one wild spike: q1 = 3, q3 = 8,
        // IQR = 5, high fence = 15.5 — only the spike is outside.
        let mut samples = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        samples.push(100.0);
        let s = SampleStats::from_samples(&samples).unwrap();
        assert_eq!(s.outliers, 1);
        // Without the spike nothing is flagged.
        samples.pop();
        assert_eq!(SampleStats::from_samples(&samples).unwrap().outliers, 0);
        // A low outlier is caught by the lower fence too.
        let low = vec![-100.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0];
        assert_eq!(SampleStats::from_samples(&low).unwrap().outliers, 1);
    }
}
