//! Offline stand-in for the real `serde_json` crate.
//!
//! The serde shim's derives are no-ops, so real JSON emission is impossible
//! here. Instead the pretty printer falls back to Rust's `{:#?}` debug
//! formatting, which preserves every field name and value in a structured,
//! diffable (if not JSON-parseable) form. Callers that persist these files
//! should treat them as debug artefacts until the real serde stack is
//! restored.

use std::fmt;

/// Error type matching `serde_json::Error`'s role in signatures.
///
/// The shim never fails, so this is only ever constructed in tests.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value in pretty debug format (stand-in for pretty JSON).
pub fn to_string_pretty<T: serde::Serialize + fmt::Debug>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:#?}"))
}

/// Renders a value in compact debug format (stand-in for compact JSON).
pub fn to_string<T: serde::Serialize + fmt::Debug>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    // Fields are consumed through `Debug` formatting only.
    #[allow(dead_code)]
    #[derive(Debug, Serialize)]
    struct Sample {
        x: u32,
        name: String,
    }

    #[test]
    fn pretty_output_contains_fields() {
        let s = Sample { x: 7, name: "fig8".to_string() };
        let out = super::to_string_pretty(&s).unwrap();
        assert!(out.contains("x: 7"));
        assert!(out.contains("fig8"));
    }
}
