//! # pefp
//!
//! Facade crate for the PEFP reproduction ("PEFP: Efficient k-hop Constrained
//! s-t Simple Path Enumeration on FPGA", ICDE 2021). It re-exports the public
//! API of the workspace crates so applications can depend on a single crate:
//!
//! * [`graph`] — graph substrate: CSR graphs, generators, dataset catalog.
//! * [`fpga`] — the simulated FPGA device (BRAM/DRAM/PCIe/pipeline cost model).
//! * [`core`] — Pre-BFS preprocessing and the PEFP enumeration engine.
//! * [`baselines`] — CPU baselines (JOIN, BC-DFS, T-DFS, T-DFS2, HP-Index).
//! * [`workload`] — query workloads, experiment runner and figure drivers.
//!
//! The most common entry point is [`enumerate_paths`], which runs the full
//! PEFP pipeline (Pre-BFS + simulated device enumeration) and returns the
//! result paths:
//!
//! ```
//! use pefp::{enumerate_paths, graph::CsrGraph, graph::VertexId};
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let result = enumerate_paths(&g, VertexId(0), VertexId(3), 3);
//! assert_eq!(result.num_paths, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Re-export of `pefp-graph`.
pub use pefp_graph as graph;

/// Re-export of `pefp-fpga`.
pub use pefp_fpga as fpga;

/// Re-export of `pefp-core`.
pub use pefp_core as core;

/// Re-export of `pefp-baselines`.
pub use pefp_baselines as baselines;

/// Re-export of `pefp-workload`.
pub use pefp_workload as workload;

/// Re-export of `pefp-host` (host runtime: loading, sessions, DMA, batching).
pub use pefp_host as host;

/// Re-export of `pefp-streaming` (dynamic graphs and real-time cycle detection).
pub use pefp_streaming as streaming;

use pefp_core::{run_query, run_query_with_sink, PefpRunResult, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::sink::PathSink;
use pefp_graph::{CsrGraph, VertexId};

/// Enumerates all s-t simple paths with at most `k` hops using the full PEFP
/// system on the default Alveo U200 device profile.
///
/// This is the one-call entry point used by the examples; for finer control
/// (variants, engine options, custom device profiles) use
/// [`core::run_query_with_options`].
pub fn enumerate_paths(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> PefpRunResult {
    run_query(g, s, t, k, PefpVariant::Full, &DeviceConfig::alveo_u200())
}

/// Streaming form of [`enumerate_paths`]: result paths are pushed into `sink`
/// (original vertex ids) instead of being materialised, so high-volume result
/// sets cost O(1) memory at every layer boundary. A sink break (e.g. a
/// [`graph::FirstN`] cap) stops the enumeration early.
///
/// ```
/// use pefp::{enumerate_paths_with_sink, graph::CountingSink};
/// use pefp::graph::{CsrGraph, VertexId};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let mut sink = CountingSink::new();
/// let result = enumerate_paths_with_sink(&g, VertexId(0), VertexId(3), 3, &mut sink);
/// assert_eq!(sink.count(), 2);
/// assert!(result.paths.is_empty());
/// ```
pub fn enumerate_paths_with_sink<S: PathSink + ?Sized>(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    sink: &mut S,
) -> PefpRunResult {
    run_query_with_sink(
        g,
        s,
        t,
        k,
        PefpVariant::Full,
        PefpVariant::Full.engine_options(),
        &DeviceConfig::alveo_u200(),
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_entry_point_runs_the_full_pipeline() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]);
        let result = enumerate_paths(&g, VertexId(0), VertexId(4), 4);
        assert_eq!(result.num_paths, 2);
        assert!(result.query_millis > 0.0);
    }
}
