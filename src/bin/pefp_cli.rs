//! `pefp-cli` — command-line front end for the PEFP reproduction.
//!
//! ```text
//! pefp-cli query   <GRAPH> <s> <t> <k>      enumerate s-t k-paths on a graph
//! pefp-cli serve   <GRAPH>                  interactive QUERY/COUNT/STATS server on stdin
//! pefp-cli batch   <GRAPH> <k> <count>      run a batched workload (Section VII-A style)
//! pefp-cli detect  [txns] [accounts]        streaming fraud detection demo
//! pefp-cli datasets                         list the Table II dataset stand-ins
//! pefp-cli help                             this message
//! ```
//!
//! `<GRAPH>` is either a path to an edge-list file (plain, SNAP or KONECT
//! dialect — auto-detected) or `dataset:<CODE>[:<scale>]` for one of the
//! paper's stand-ins, e.g. `dataset:SE` or `dataset:BS:small`.

use pefp::graph::sampling::sample_reachable_pairs;
use pefp::graph::{Dataset, GraphStats, ScaleProfile};
use pefp::host::{
    load_dataset, load_edge_list_file, serve, BatchScheduler, GraphHandle, HostSession,
    QueryRequest, SchedulerConfig, SessionConfig,
};
use pefp::streaming::{
    CycleDetector, DetectorConfig, DetectorEngine, TransactionGenerator, TransactionGeneratorConfig,
};

const HELP: &str = "\
pefp-cli — k-hop constrained s-t simple path enumeration (PEFP reproduction)

USAGE:
    pefp-cli query   <GRAPH> <s> <t> <k>
    pefp-cli serve   <GRAPH>
    pefp-cli batch   <GRAPH> <k> <count>
    pefp-cli detect  [transactions] [accounts]
    pefp-cli datasets
    pefp-cli help

GRAPH:
    a path to an edge-list file (plain / SNAP / KONECT, auto-detected), or
    dataset:<CODE>[:<scale>] — e.g. dataset:SE, dataset:BS:small, dataset:AM:tiny
";

/// Parses a `<GRAPH>` argument into a loaded handle.
fn parse_graph_spec(spec: &str) -> Result<GraphHandle, String> {
    if let Some(rest) = spec.strip_prefix("dataset:") {
        let mut parts = rest.split(':');
        let code = parts.next().unwrap_or_default();
        let scale = match parts.next().unwrap_or("small").to_ascii_lowercase().as_str() {
            "tiny" => ScaleProfile::Tiny,
            "small" => ScaleProfile::Small,
            "medium" => ScaleProfile::Medium,
            other => return Err(format!("unknown scale {other:?} (tiny|small|medium)")),
        };
        let dataset = Dataset::from_code(&code.to_ascii_uppercase())
            .ok_or_else(|| format!("unknown dataset code {code:?} (see `pefp-cli datasets`)"))?;
        Ok(load_dataset(dataset, scale))
    } else {
        load_edge_list_file(spec).map_err(|e| e.to_string())
    }
}

fn parse_u32(value: &str, name: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|_| format!("{name} must be a non-negative integer, got {value:?}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [graph_spec, s, t, k] = args else {
        return Err("usage: pefp-cli query <GRAPH> <s> <t> <k>".to_string());
    };
    let handle = parse_graph_spec(graph_spec)?;
    println!("loaded {}", handle.summary());
    let request = QueryRequest::new(parse_u32(s, "s")?, parse_u32(t, "t")?, parse_u32(k, "k")?);
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());
    let outcome = session.run_query(request).map_err(|e| e.to_string())?;
    println!("paths found           : {}", outcome.num_paths);
    for (i, path) in outcome.paths.iter().take(10).enumerate() {
        let rendered: Vec<String> = path.iter().map(|v| v.0.to_string()).collect();
        println!("  #{:<3} {}", i + 1, rendered.join(" -> "));
    }
    if outcome.paths.len() > 10 {
        println!("  ... and {} more", outcome.paths.len() - 10);
    }
    println!("preprocessing (T1)    : {:9.3} ms", outcome.preprocess_millis);
    println!(
        "PCIe transfer         : {:9.3} ms ({} bytes)",
        outcome.transfer.total_millis, outcome.transfer.bytes
    );
    println!("device enumeration(T2): {:9.3} ms", outcome.device_millis);
    println!("total                 : {:9.3} ms", outcome.total_millis());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let [graph_spec] = args else {
        return Err("usage: pefp-cli serve <GRAPH>".to_string());
    };
    let handle = parse_graph_spec(graph_spec)?;
    eprintln!("loaded {}; type HELP for commands, QUIT to exit", handle.summary());
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let served = serve(&mut session, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())?;
    eprintln!("served {served} command(s)");
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let [graph_spec, k, count] = args else {
        return Err("usage: pefp-cli batch <GRAPH> <k> <count>".to_string());
    };
    let handle = parse_graph_spec(graph_spec)?;
    let k = parse_u32(k, "k")?;
    let count = parse_u32(count, "count")? as usize;
    println!("loaded {}", handle.summary());
    let requests: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, count, 0x5EED)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    if requests.is_empty() {
        return Err("no reachable (s, t) pairs found for this k".to_string());
    }
    println!("running {} reachable queries with k = {k}", requests.len());
    let scheduler = BatchScheduler::new(SchedulerConfig {
        preprocess_threads: 4,
        ..SchedulerConfig::default()
    });
    let outcome = scheduler.run_batch(&handle, &requests).map_err(|e| e.to_string())?;
    println!("total paths           : {}", outcome.total_paths());
    println!("preprocessing (T1)    : {:9.2} ms (4 threads)", outcome.preprocess_millis);
    println!(
        "single DMA transfer   : {:9.2} ms ({} bytes, {} descriptors)",
        outcome.transfer.total_millis, outcome.transfer.bytes, outcome.transfer.descriptors
    );
    println!("device enumeration(T2): {:9.2} ms", outcome.device_millis);
    println!("avg total per query   : {:9.3} ms", outcome.avg_query_millis());
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let transactions =
        args.first().map(|v| parse_u32(v, "transactions")).transpose()?.unwrap_or(2_000) as usize;
    let accounts = args.get(1).map(|v| parse_u32(v, "accounts")).transpose()?.unwrap_or(500);
    if accounts < 4 {
        return Err("accounts must be at least 4".to_string());
    }
    let mut generator = TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: accounts,
        fraud_probability: 0.03,
        ring_size: 4,
        seed: 0xF2AD,
    });
    let stream = generator.stream(transactions);
    let mut detector = CycleDetector::new(DetectorConfig {
        max_cycle_hops: 6,
        window_size: 10_000,
        engine: DetectorEngine::PefpSimulated,
        ..DetectorConfig::default()
    });
    let alerts = detector.ingest_stream(&stream);
    let stats = detector.stats();
    println!("transactions          : {}", stats.transactions);
    println!("alerts                : {} ({} cycles)", stats.alerts, stats.cycles);
    println!("alerts on fraud rings : {}", stats.true_positive_alerts);
    println!("fraud recall          : {:.1}%", detector.fraud_recall() * 100.0);
    println!("host time             : {:9.1} ms", stats.host_millis);
    println!("simulated device time : {:9.2} ms", stats.device_millis);
    if let Some(alert) = alerts.first() {
        println!(
            "first alert: transaction {} -> {} at ts {} closed {} cycle(s)",
            alert.transaction.from,
            alert.transaction.to,
            alert.transaction.timestamp,
            alert.cycles.len()
        );
    }
    Ok(())
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<6} {:<16} {:>10} {:>10} {:>8}   {:>10} {:>10} {:>7}",
        "code", "name", "paper |V|", "paper |E|", "paper d", "standin|V|", "standin|E|", "d"
    );
    for dataset in Dataset::all() {
        let spec = dataset.spec();
        let g = dataset.generate(ScaleProfile::Small).to_csr();
        let stats = GraphStats::compute(&g, 16);
        println!(
            "{:<6} {:<16} {:>10} {:>10} {:>8.1}   {:>10} {:>10} {:>7.1}",
            spec.code,
            spec.name,
            spec.paper.num_vertices,
            spec.paper.num_edges,
            spec.paper.avg_degree,
            stats.num_vertices,
            stats.num_edges,
            stats.avg_degree
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest.to_vec()),
        None => {
            print!("{HELP}");
            return;
        }
    };
    let result = match command {
        "query" => cmd_query(&rest),
        "serve" => cmd_serve(&rest),
        "batch" => cmd_batch(&rest),
        "detect" => cmd_detect(&rest),
        "datasets" => cmd_datasets(),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{HELP}")),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_specs_parse_with_and_without_scale() {
        let h = parse_graph_spec("dataset:RT").unwrap();
        assert!(h.num_vertices() > 0);
        let h = parse_graph_spec("dataset:am:tiny").unwrap();
        assert!(h.num_vertices() > 0);
        assert!(parse_graph_spec("dataset:NOPE").is_err());
        assert!(parse_graph_spec("dataset:RT:huge").is_err());
        assert!(parse_graph_spec("/does/not/exist.txt").is_err());
    }

    #[test]
    fn integer_parsing_reports_the_argument_name() {
        assert_eq!(parse_u32("17", "k").unwrap(), 17);
        let err = parse_u32("x", "k").unwrap_err();
        assert!(err.contains('k'));
    }

    #[test]
    fn query_command_runs_end_to_end_on_a_dataset_standin() {
        // Find a reachable pair first so the command always succeeds.
        let handle = parse_graph_spec("dataset:TS:tiny").unwrap();
        let (s, t) = sample_reachable_pairs(&handle.csr, 4, 1, 1)[0];
        let args =
            vec!["dataset:TS:tiny".to_string(), s.0.to_string(), t.0.to_string(), "4".to_string()];
        assert!(cmd_query(&args).is_ok());
    }

    #[test]
    fn batch_and_detect_commands_run_on_small_inputs() {
        let args = vec!["dataset:TS:tiny".to_string(), "4".to_string(), "3".to_string()];
        assert!(cmd_batch(&args).is_ok());
        assert!(cmd_detect(&["200".to_string(), "50".to_string()]).is_ok());
        assert!(cmd_detect(&["200".to_string(), "2".to_string()]).is_err());
    }

    #[test]
    fn usage_errors_are_reported_not_panicked() {
        assert!(cmd_query(&[]).is_err());
        assert!(cmd_batch(&["only-one-arg".to_string()]).is_err());
        assert!(cmd_serve(&[]).is_err());
        assert!(cmd_datasets().is_ok());
    }
}
