//! End-to-end tests of the TCP front door over real sockets: protocol fuzz
//! against a live listener, cancellation on client disconnect mid-STREAM,
//! byte-identical answers across the binary, text and in-process paths, and
//! typed BUSY backpressure when the admission queue is full.

use pefp::graph::generators::{layered_dag, layered_sink, layered_source};
use pefp::graph::CsrGraph;
use pefp::host::net::{NetConfig, NetServer};
use pefp::host::wire::{write_frame, Reply, Request, FRAME_MAGIC, MAX_FRAME_PAYLOAD};
use pefp::host::{GraphHandle, HostRuntime, QueryRequest, RuntimeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn front_door(name: &str, g: CsrGraph, config: RuntimeConfig) -> NetServer {
    let runtime = HostRuntime::launch(GraphHandle::from_csr(name, g), config);
    NetServer::bind(runtime, "127.0.0.1:0", NetConfig::default()).expect("bind loopback")
}

fn diamond() -> CsrGraph {
    CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
}

fn connect(server: &NetServer) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect loopback");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

/// Asserts the connection still answers a valid query after whatever abuse
/// preceded it.
fn expect_count_answers(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) {
    Request::Count { s: 0, t: 3, k: 3 }.write_to(writer).expect("send COUNT");
    match Reply::read_from(reader).expect("read reply").expect("reply present") {
        Reply::Summary { num_paths, .. } => assert_eq!(num_paths, 2),
        other => panic!("expected a Summary, got {other:?}"),
    }
}

#[test]
fn seeded_frame_fuzz_gets_typed_errors_and_the_listener_survives() {
    let server = front_door("diamond", diamond(), RuntimeConfig::default());

    // Deterministic splitmix-style generator: the fuzz bytes are reproducible
    // run to run.
    let mut state = 0x5EED_CAFE_F00D_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32
    };

    // Well-formed frames (magic + valid checksum) carrying garbage opcodes
    // and payloads: every one of them must yield exactly one reply frame —
    // typed ERR or a valid answer when the bytes happen to parse — and the
    // connection must keep serving afterwards.
    let (mut reader, mut writer) = connect(&server);
    for round in 0..48 {
        let opcode = loop {
            let candidate = (next() % 256) as u8;
            if candidate != 0x08 {
                break candidate; // QUIT would (correctly) end the connection
            }
        };
        let len = (next() % 48) as usize;
        let payload: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        write_frame(&mut writer, opcode, (next() % 4) as u16, &payload).expect("send fuzz frame");
        writer.flush().expect("flush fuzz frame");
        let reply = Reply::read_from(&mut reader)
            .unwrap_or_else(|e| panic!("fuzz round {round}: transport died: {e}"))
            .unwrap_or_else(|| panic!("fuzz round {round}: connection closed"));
        match reply {
            Reply::Error { .. }
            | Reply::Summary { .. }
            | Reply::End { .. }
            | Reply::Paths(_)
            | Reply::Json(_)
            | Reply::BatchOk { .. }
            | Reply::UpdateOk { .. }
            | Reply::Busy => {}
            Reply::Bye => panic!("fuzz round {round}: QUIT was excluded, got Bye"),
        }
    }
    expect_count_answers(&mut reader, &mut writer);

    // A corrupted payload byte is caught by the checksum; the stream stays
    // framed and the connection survives.
    let mut frame = Request::Count { s: 0, t: 3, k: 3 }.encode();
    let last = frame.len() - 1;
    frame[last] ^= 0x40;
    writer.write_all(&frame).expect("send corrupt frame");
    writer.flush().expect("flush corrupt frame");
    match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
        Reply::Error { message, .. } => {
            assert!(message.contains("checksum"), "unexpected message: {message}")
        }
        other => panic!("expected a checksum ERR, got {other:?}"),
    }
    expect_count_answers(&mut reader, &mut writer);

    // An oversized declared length is rejected with a typed ERR before any
    // allocation; the stream is desynchronised so the server hangs up, and
    // the listener accepts the next connection as if nothing happened.
    let mut header = vec![FRAME_MAGIC, 0x02, 0, 0];
    header.extend_from_slice(&((MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes()));
    header.extend_from_slice(&[0, 0, 0, 0]);
    writer.write_all(&header).expect("send oversized header");
    writer.flush().expect("flush oversized header");
    match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
        Reply::Error { message, .. } => {
            assert!(message.contains("exceeds"), "unexpected message: {message}")
        }
        other => panic!("expected an oversized ERR, got {other:?}"),
    }
    assert!(
        Reply::read_from(&mut reader).expect("clean close").is_none(),
        "the server hangs up after a desynchronised stream"
    );

    // Mid-stream garbage that does not start with the magic byte: one final
    // typed ERR, hang-up, and the listener still serves fresh connections.
    let (mut reader, mut writer) = connect(&server);
    expect_count_answers(&mut reader, &mut writer);
    writer.write_all(&[0x00, 0xFF, 0x13, 0x37]).expect("send garbage");
    writer.flush().expect("flush garbage");
    match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
        Reply::Error { message, .. } => {
            assert!(message.contains("magic"), "unexpected message: {message}")
        }
        other => panic!("expected a bad-magic ERR, got {other:?}"),
    }
    let (mut reader, mut writer) = connect(&server);
    expect_count_answers(&mut reader, &mut writer);
    // Almost every fuzz frame (random opcodes rarely land on a valid layout)
    // plus the checksum/oversized/bad-magic probes land in the counter.
    assert!(server.stats().protocol_errors >= 40, "the fuzz frames were counted");
    server.shutdown();
}

#[test]
fn client_disconnect_mid_stream_cancels_the_engine_over_real_sockets() {
    // 6^5 = 7776 paths, streamed with a limit above the total so the FirstN
    // sink never breaks on its own: the only way `cancelled_jobs` can become
    // 1 is the disconnect below.
    let g = layered_dag(5, 6, 6, 1).to_csr();
    let server =
        front_door("layered", g, RuntimeConfig { compute_units: 1, ..RuntimeConfig::default() });
    let runtime = Arc::clone(server.runtime());

    let (mut reader, mut writer) = connect(&server);
    let request =
        Request::Stream { s: layered_source().0, t: layered_sink(5, 6).0, k: 6, limit: 10_000 };
    request.write_to(&mut writer).expect("send STREAM");
    match Reply::read_from(&mut reader).expect("read first chunk").expect("chunk present") {
        Reply::Paths(chunk) => assert!(!chunk.is_empty(), "the engine is streaming"),
        other => panic!("expected a Paths chunk, got {other:?}"),
    }
    // Hang up mid-stream: dropping both halves closes the socket; the
    // server's next flush fails, the sink breaks, the session cancels the
    // running job's ticket.
    drop(reader);
    drop(writer);

    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.stats().cancelled_jobs == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(runtime.stats().cancelled_jobs, 1, "the disconnect cancelled the running stream");
    assert_eq!(runtime.leased_cus(), 0, "the CU lease went back to the pool");

    // The runtime serves the next connection normally.
    let (mut reader, mut writer) = connect(&server);
    Request::Count { s: layered_source().0, t: layered_sink(5, 6).0, k: 6 }
        .write_to(&mut writer)
        .expect("send COUNT");
    match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
        Reply::Summary { num_paths, .. } => assert_eq!(num_paths, 7776),
        other => panic!("expected a Summary, got {other:?}"),
    }
    assert!(server.stats().io_disconnects >= 1, "the hang-up was counted");
    server.shutdown();
}

#[test]
fn binary_text_and_in_process_stream_answers_are_byte_identical() {
    // 4^3 = 64 source-to-sink paths.
    let g = layered_dag(3, 4, 4, 2).to_csr();
    let server = front_door(
        "layered_small",
        g,
        RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
    );
    let runtime = Arc::clone(server.runtime());
    let (s, t, k) = (layered_source().0, layered_sink(3, 4).0, 4u32);

    // In-process reference: the collected result set.
    let session = runtime.register_session();
    let reference: Vec<Vec<u32>> = runtime
        .submit_query(session, QueryRequest::new(s, t, k), true)
        .expect("admit reference query")
        .wait()
        .expect("run reference query")
        .paths
        .into_iter()
        .map(|path| path.into_iter().map(|v| v.0).collect())
        .collect();
    assert_eq!(reference.len(), 64);

    // Binary STREAM over TCP.
    let (mut reader, mut writer) = connect(&server);
    Request::Stream { s, t, k, limit: 10_000 }.write_to(&mut writer).expect("send STREAM");
    let mut binary: Vec<Vec<u32>> = Vec::new();
    let streamed = loop {
        match Reply::read_from(&mut reader).expect("read frame").expect("frame present") {
            Reply::Paths(chunk) => binary.extend(chunk),
            Reply::End { streamed, .. } => break streamed,
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert_eq!(streamed, 64);

    // Text STREAM over the same TCP port.
    let (mut reader, mut writer) = connect(&server);
    writeln!(writer, "STREAM {s} {t} {k} 10000").expect("send text STREAM");
    writer.flush().expect("flush text STREAM");
    let mut text: Vec<Vec<u32>> = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read line") > 0, "server closed early");
        let line = line.trim_end();
        if line.starts_with("OK end") {
            assert!(line.contains("streamed=64"), "unexpected end line: {line}");
            break;
        }
        let chunk = line.strip_prefix("OK paths ").unwrap_or_else(|| panic!("bad line {line}"));
        for path in chunk.split(' ') {
            text.push(path.split("->").map(|v| v.parse().expect("vertex id")).collect());
        }
    }

    // Same PathSink pipeline underneath -> identical sequences, not just
    // identical sets.
    assert_eq!(binary, reference, "binary STREAM matches the in-process answer");
    assert_eq!(text, reference, "text STREAM matches the in-process answer");
    server.shutdown();
}

#[test]
fn queue_full_surfaces_as_a_typed_busy_frame_and_the_connection_survives() {
    // One CU, a one-slot admission queue: wedge the CU with a streaming job
    // whose 1-path channel nobody drains (the engine blocks on backpressure
    // holding its lease), park a second job in the only queue slot, and the
    // TCP request below is deterministically rejected with QueueFull.
    let g = layered_dag(5, 6, 6, 1).to_csr();
    let server = front_door(
        "layered",
        g,
        RuntimeConfig { compute_units: 1, queue_capacity: 1, ..RuntimeConfig::default() },
    );
    let runtime = Arc::clone(server.runtime());
    let session = runtime.register_session();
    let wedge_request = QueryRequest::new(layered_source().0, layered_sink(5, 6).0, 6);
    let (wedge_ticket, wedge_rx) =
        runtime.submit_query_streaming(session, wedge_request, 1).expect("admit wedge");
    let first = wedge_rx.recv().expect("the wedge engine is running");
    assert!(!first.is_empty());
    let parked =
        runtime.submit_query(session, QueryRequest::new(0, 1, 2), false).expect("park a job");

    let (mut reader, mut writer) = connect(&server);
    Request::Count { s: 0, t: 1, k: 2 }.write_to(&mut writer).expect("send COUNT");
    match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
        Reply::Busy => {}
        other => panic!("expected BUSY backpressure, got {other:?}"),
    }
    assert_eq!(server.stats().busy_replies, 1);

    // Release the wedge; the same connection recovers with plain retries.
    drop(wedge_ticket);
    drop(wedge_rx);
    parked.wait().expect("the parked job completes");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        Request::Count { s: 0, t: 1, k: 2 }.write_to(&mut writer).expect("send retry");
        match Reply::read_from(&mut reader).expect("read reply").expect("reply present") {
            Reply::Summary { .. } => break,
            Reply::Busy if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10))
            }
            other => panic!("expected Summary or transient BUSY, got {other:?}"),
        }
    }
    server.shutdown();
}
