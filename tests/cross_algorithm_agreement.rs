//! Cross-crate integration tests: every enumeration algorithm in the
//! workspace must return exactly the same set of s-t k-hop simple paths.
//!
//! This is the completeness/soundness argument of the reproduction: the naive
//! DFS is obviously correct, and PEFP (in every variant), JOIN, BC-DFS,
//! T-DFS, T-DFS2 and HP-Index are all compared against it on a spread of
//! topologies, hop constraints and endpoints.

use pefp::baselines::{
    bc_dfs_enumerate, naive_bfs_enumerate, naive_dfs_enumerate, tdfs2_enumerate, tdfs_enumerate,
    HpIndex, Join,
};
use pefp::core::{run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::paths::{canonicalize, validate_result, Path};
use pefp::graph::{generators, CsrGraph, Dataset, ScaleProfile, VertexId};

/// Runs every algorithm on one query and asserts pairwise equality.
fn assert_all_agree(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) {
    let reference = canonicalize(naive_dfs_enumerate(g, s, t, k));
    assert!(
        validate_result(g, s, t, k as usize, &reference).is_empty(),
        "the reference result itself must be well-formed"
    );

    let candidates: Vec<(&str, Vec<Path>)> = vec![
        ("naive-BFS", naive_bfs_enumerate(g, s, t, k)),
        ("BC-DFS", bc_dfs_enumerate(g, s, t, k)),
        ("T-DFS", tdfs_enumerate(g, s, t, k)),
        ("T-DFS2", tdfs2_enumerate(g, s, t, k)),
        ("JOIN", Join::new().enumerate(g, s, t, k)),
        ("HP-Index", HpIndex::build(g, 8, k).enumerate(g, s, t, k)),
    ];
    for (name, paths) in candidates {
        assert_eq!(
            canonicalize(paths),
            reference,
            "{name} disagrees with naive DFS on ({s},{t},{k})"
        );
    }

    let device = DeviceConfig::alveo_u200();
    for variant in PefpVariant::all() {
        let result = run_query(g, s, t, k, variant, &device);
        assert_eq!(
            canonicalize(result.paths),
            reference,
            "{} disagrees with naive DFS on ({s},{t},{k})",
            variant.name()
        );
    }
}

#[test]
fn agreement_on_handcrafted_graphs() {
    // Diamond with a shortcut and a cycle.
    let g = CsrGraph::from_edges(
        6,
        &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 5), (0, 5), (5, 0), (3, 4), (4, 5)],
    );
    for k in 1..=5 {
        assert_all_agree(&g, VertexId(0), VertexId(5), k);
    }
}

#[test]
fn agreement_on_power_law_graphs() {
    for seed in 0..2u64 {
        let g = generators::chung_lu(120, 5.0, 2.2, seed).to_csr();
        assert_all_agree(&g, VertexId(0), VertexId(60), 4);
        assert_all_agree(&g, VertexId(3), VertexId(4), 5);
    }
}

#[test]
fn agreement_on_web_and_small_world_graphs() {
    let g = generators::copying_model(150, 4, 0.3, 9).to_csr();
    assert_all_agree(&g, VertexId(1), VertexId(75), 4);
    let g = generators::small_world(150, 2, 0.2, 10).to_csr();
    assert_all_agree(&g, VertexId(0), VertexId(75), 5);
}

#[test]
fn agreement_on_layered_dags_with_known_counts() {
    let g = generators::layered_dag(3, 4, 4, 5).to_csr();
    let s = generators::layered_source();
    let t = generators::layered_sink(3, 4);
    let expected = generators::layered_full_path_count(3, 4);
    let result = run_query(&g, s, t, 4, PefpVariant::Full, &DeviceConfig::alveo_u200());
    assert_eq!(result.num_paths, expected);
    assert_all_agree(&g, s, t, 4);
}

#[test]
fn agreement_on_grid_graphs_with_binomial_counts() {
    let g = generators::grid_graph(4, 4).to_csr();
    let s = VertexId(0);
    let t = VertexId(15);
    let k = 6; // exactly the Manhattan distance
    let expected = generators::grid_corner_path_count(4, 4);
    let result = run_query(&g, s, t, k, PefpVariant::Full, &DeviceConfig::alveo_u200());
    assert_eq!(result.num_paths, expected);
    assert_all_agree(&g, s, t, k);
}

#[test]
fn agreement_on_dataset_standins() {
    // One query on a handful of Table II stand-ins at tiny scale.
    for dataset in [Dataset::WikiTalk, Dataset::TwitterSocial, Dataset::Amazon] {
        let g = dataset.generate(ScaleProfile::Tiny).to_csr();
        let queries = pefp::workload::generate_queries(&g, 4, 2, 0xBEEF);
        for q in queries {
            assert_all_agree(&g, q.s, q.t, 4);
        }
    }
}

#[test]
fn agreement_on_edge_cases() {
    let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    // Source equals target.
    assert_all_agree(&g, VertexId(2), VertexId(2), 3);
    // Unreachable within the budget.
    assert_all_agree(&g, VertexId(0), VertexId(3), 2);
    // k = 1 (direct edges only).
    assert_all_agree(&g, VertexId(0), VertexId(1), 1);
}
