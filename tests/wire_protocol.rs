//! Property tests for the binary wire protocol (`pefp_host::wire`).
//!
//! Every frame type — all eight requests and all ten replies — must survive
//! an encode → decode → re-encode cycle with the decoded value equal to the
//! original and the re-encoded bytes *identical* to the first encoding
//! (there is exactly one wire form per value, so checksums, logs and replay
//! tooling can compare frames byte-wise). Decoding arbitrary byte prefixes
//! of valid frames must never panic or over-allocate: truncation is an
//! `Io`/EOF-shaped error, never garbage output.

use pefp::host::wire::{read_frame, ErrCode, Reply, Request, WireError};
use proptest::prelude::*;

/// Bounded `(s, t, k)` query triples (values are arbitrary on the wire; the
/// protocol layer does not validate against a graph).
fn arb_triple() -> impl Strategy<Value = (u32, u32, u32)> {
    (0u32..50_000, 0u32..50_000, 0u32..16)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u32..8,
        arb_triple(),
        0u64..20_000,
        prop::collection::vec(arb_triple(), 0..40),
        (prop::collection::vec((0u32..50_000, 0u32..50_000), 0..40), 0u32..2),
    )
        .prop_map(|(tag, (s, t, k), limit, queries, (edges, remove))| match tag {
            0 => Request::Query { s, t, k },
            1 => Request::Count { s, t, k },
            2 => Request::Stream { s, t, k, limit },
            3 => Request::Batch { queries },
            4 => Request::Explain { s, t, k },
            5 => Request::Update { remove: remove == 1, edges },
            6 => Request::Stats,
            _ => Request::Quit,
        })
}

/// Printable-ASCII strings for JSON bodies and error messages.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..48)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn arb_paths() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..100_000, 0..12), 0..20)
}

fn arb_err_code() -> impl Strategy<Value = ErrCode> {
    (1u16..8).prop_map(|v| ErrCode::from_u16(v).expect("all wire codes covered"))
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u32..10,
        ((0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40), 0u32..2),
        arb_paths(),
        (0u32..5_000, prop::collection::vec(0u64..100_000, 0..40), 0u64..1 << 30, 0u32..5_000),
        (arb_text(), arb_err_code()),
    )
        .prop_map(
            |(
                tag,
                ((num_paths, preprocess_ns, transfer_ns, device_ns), cache_hit),
                paths,
                (unique, paths_per_query, epoch, edges),
                (text, code),
            )| {
                match tag {
                    0 => Reply::Summary {
                        num_paths,
                        preprocess_ns,
                        transfer_ns,
                        device_ns,
                        cache_hit: cache_hit == 1,
                        sample: paths,
                    },
                    1 => Reply::Paths(paths),
                    2 => Reply::End { streamed: num_paths, limit: device_ns },
                    3 => Reply::BatchOk {
                        unique,
                        cache_hits: num_paths,
                        preprocess_ns,
                        transfer_ns,
                        device_ns,
                        paths_per_query,
                    },
                    4 => Reply::Json(text),
                    5 => Reply::UpdateOk { epoch, edges },
                    6 => Reply::Bye,
                    7 => Reply::Busy,
                    _ => Reply::Error { code, message: text },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Requests decode back to themselves and re-encode byte-identically.
    #[test]
    fn every_request_frame_round_trips_byte_identically(request in arb_request()) {
        let mut bytes = Vec::new();
        request.write_to(&mut bytes).expect("encode to memory");
        let mut cursor = &bytes[..];
        let decoded = Request::read_from(&mut cursor)
            .expect("valid frame decodes")
            .expect("frame present");
        prop_assert!(cursor.is_empty(), "decoding consumed the whole frame");
        prop_assert_eq!(&decoded, &request);
        let mut re_encoded = Vec::new();
        decoded.write_to(&mut re_encoded).expect("re-encode to memory");
        prop_assert_eq!(re_encoded, bytes);
    }

    /// Replies decode back to themselves and re-encode byte-identically.
    #[test]
    fn every_reply_frame_round_trips_byte_identically(reply in arb_reply()) {
        let mut bytes = Vec::new();
        reply.write_to(&mut bytes).expect("encode to memory");
        let mut cursor = &bytes[..];
        let decoded = Reply::read_from(&mut cursor)
            .expect("valid frame decodes")
            .expect("frame present");
        prop_assert!(cursor.is_empty(), "decoding consumed the whole frame");
        prop_assert_eq!(&decoded, &reply);
        let mut re_encoded = Vec::new();
        decoded.write_to(&mut re_encoded).expect("re-encode to memory");
        prop_assert_eq!(re_encoded, bytes);
    }

    /// Any strict prefix of a valid frame is a clean truncation error (EOF at
    /// the frame boundary, `Io` mid-frame) — never a panic, never a value.
    #[test]
    fn truncated_request_frames_never_panic_or_decode(
        request in arb_request(),
        cut_seed in 0u64..1 << 32,
    ) {
        let mut bytes = Vec::new();
        request.write_to(&mut bytes).expect("encode to memory");
        prop_assume!(bytes.len() > 1);
        let cut = 1 + (cut_seed as usize) % (bytes.len() - 1);
        let mut cursor = &bytes[..cut];
        match read_frame(&mut cursor) {
            Err(WireError::Io(_)) => {}
            Ok(None) => prop_assert!(false, "a strict prefix cannot be a clean EOF"),
            Ok(Some(_)) => prop_assert!(false, "a strict prefix cannot be a whole frame"),
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Flipping any payload byte is caught by the frame checksum.
    #[test]
    fn any_payload_corruption_fails_the_checksum(
        request in arb_request(),
        flip_seed in 0u64..1 << 32,
        xor in 1u32..256,
    ) {
        let mut bytes = Vec::new();
        request.write_to(&mut bytes).expect("encode to memory");
        // Byte 12 onward is payload (the 12-byte header carries the
        // checksum); requests without a payload have nothing to corrupt.
        prop_assume!(bytes.len() > 12);
        let idx = 12 + (flip_seed as usize) % (bytes.len() - 12);
        bytes[idx] ^= xor as u8;
        let mut cursor = &bytes[..];
        match read_frame(&mut cursor) {
            Err(WireError::Checksum { .. }) => {}
            other => prop_assert!(false, "corruption at byte {idx} slipped through: {other:?}"),
        }
    }
}
