//! Property-based tests over random graphs and queries.
//!
//! Strategy: generate arbitrary small directed graphs (edge lists over a
//! bounded vertex set), arbitrary endpoints and hop budgets, and check the
//! system-level invariants that must hold for *every* input:
//!
//! * PEFP (all variants) returns exactly the naive DFS result set;
//! * every returned path is a valid simple s-t path within the budget;
//! * Pre-BFS never removes a vertex that lies on any valid path;
//! * the result count is monotone in `k`;
//! * BC-DFS/JOIN agree with the oracle too (their pruning is the subtle part).

use pefp::baselines::{naive_dfs_enumerate, Join};
use pefp::core::{pre_bfs, run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::paths::{canonicalize, validate_result};
use pefp::graph::{CsrGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a directed graph with up to `n` vertices and `m` edges.
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| CsrGraph::from_edges(n as usize, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pefp_matches_naive_dfs(
        g in arb_graph(24, 90),
        s in 0u32..24,
        t in 0u32..24,
        k in 0u32..6,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let expected = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        let result = run_query(&g, s, t, k, PefpVariant::Full, &DeviceConfig::alveo_u200());
        prop_assert_eq!(canonicalize(result.paths), expected);
    }

    #[test]
    fn every_variant_is_valid_and_complete(
        g in arb_graph(18, 60),
        s in 0u32..18,
        t in 0u32..18,
        k in 1u32..5,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let expected = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        let device = DeviceConfig::alveo_u200();
        for variant in PefpVariant::all() {
            let result = run_query(&g, s, t, k, variant, &device);
            let got = canonicalize(result.paths);
            prop_assert!(validate_result(&g, s, t, k as usize, &got).is_empty());
            prop_assert_eq!(&got, &expected, "variant {}", variant.name());
        }
    }

    #[test]
    fn join_and_bcdfs_match_the_oracle(
        g in arb_graph(20, 70),
        s in 0u32..20,
        t in 0u32..20,
        k in 1u32..6,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let expected = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        let join = canonicalize(Join::new().enumerate(&g, s, t, k));
        prop_assert_eq!(join, expected.clone());
        let bc = canonicalize(pefp::baselines::bc_dfs_enumerate(&g, s, t, k));
        prop_assert_eq!(bc, expected);
    }

    #[test]
    fn prebfs_preserves_every_valid_path(
        g in arb_graph(20, 70),
        s in 0u32..20,
        t in 0u32..20,
        k in 1u32..6,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let paths = naive_dfs_enumerate(&g, s, t, k);
        let prep = pre_bfs(&g, s, t, k);
        if !paths.is_empty() {
            prop_assert!(prep.feasible, "Pre-BFS declared a satisfiable query infeasible");
        }
        if let Some(mapping) = &prep.mapping {
            for path in &paths {
                for v in path {
                    prop_assert!(
                        mapping.to_new(*v).is_some(),
                        "Pre-BFS removed vertex {v} which lies on a valid path"
                    );
                }
            }
        }
    }

    #[test]
    fn result_count_is_monotone_in_k(
        g in arb_graph(16, 50),
        s in 0u32..16,
        t in 0u32..16,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let device = DeviceConfig::alveo_u200();
        let mut previous = 0u64;
        for k in 1..=5u32 {
            let count = run_query(&g, s, t, k, PefpVariant::Full, &device).num_paths;
            prop_assert!(count >= previous, "k={k}: {count} < {previous}");
            previous = count;
        }
    }

    #[test]
    fn simulated_time_is_positive_and_finite(
        g in arb_graph(16, 60),
        s in 0u32..16,
        t in 0u32..16,
        k in 1u32..5,
    ) {
        let r = run_query(&g, VertexId(s), VertexId(t), k, PefpVariant::Full, &DeviceConfig::alveo_u200());
        prop_assert!(r.query_millis.is_finite());
        prop_assert!(r.query_millis >= 0.0);
        prop_assert!(r.total_millis() >= r.query_millis);
    }
}
