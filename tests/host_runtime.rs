//! Cross-crate integration tests of the host runtime: text query → session →
//! payload serialisation → DMA → simulated device → results, checked against
//! the CPU baselines — plus the concurrency-correctness suite of the
//! multi-tenant `HostRuntime` (N client threads sharing one CU cluster,
//! cancellation mid-stream, admission-queue backpressure).

use pefp::baselines::{naive_dfs_enumerate, Join};
use pefp::core::pre_bfs;
use pefp::graph::paths::canonicalize;
use pefp::graph::sampling::sample_reachable_pairs;
use pefp::graph::{Dataset, ScaleProfile};
use pefp::host::binfmt::{decode_payload, encode_payload};
use pefp::host::{
    BatchScheduler, GraphHandle, HostError, HostRuntime, HostSession, QueryRequest, RuntimeConfig,
    SchedulerConfig, SessionConfig,
};
use std::sync::Arc;

fn dataset_handle(dataset: Dataset) -> GraphHandle {
    GraphHandle::from_csr(
        format!("test:{}", dataset.code()),
        dataset.generate(ScaleProfile::Tiny).to_csr(),
    )
}

#[test]
fn session_results_match_join_and_naive_on_a_dataset_standin() {
    let handle = dataset_handle(Dataset::SocEpinions);
    let g = handle.csr.clone();
    let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());

    let k = 4;
    let pairs = sample_reachable_pairs(&g, k, 5, 0xA11CE);
    assert!(!pairs.is_empty(), "workload sampler found no reachable pairs");
    for (s, t) in pairs {
        let outcome = session.run_query(QueryRequest { s, t, k }).unwrap();
        let naive = naive_dfs_enumerate(&g, s, t, k);
        let join = Join::new().enumerate(&g, s, t, k);
        assert_eq!(outcome.num_paths, naive.len() as u64, "{s}->{t}");
        assert_eq!(canonicalize(outcome.paths.clone()), canonicalize(naive));
        assert_eq!(outcome.num_paths, join.len() as u64);
    }
    assert_eq!(session.stats().rejected, 0);
}

#[test]
fn text_protocol_round_trips_through_the_session() {
    let handle = dataset_handle(Dataset::TwitterSocial);
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());
    let pairs = sample_reachable_pairs(&handle.csr, 5, 1, 7);
    let Some(&(s, t)) = pairs.first() else {
        panic!("no reachable pair in the stand-in");
    };
    let text = format!("QUERY {} {} 5", s.0, t.0);
    let outcome = session.run_text_query(&text).unwrap();
    assert_eq!(outcome.request.to_wire(), text);
    let oracle = naive_dfs_enumerate(&handle.csr, s, t, 5);
    assert_eq!(outcome.num_paths, oracle.len() as u64);
}

#[test]
fn payload_survives_the_wire_for_every_dataset_standin() {
    for dataset in Dataset::all() {
        let g = dataset.generate(ScaleProfile::Tiny).to_csr();
        let pairs = sample_reachable_pairs(&g, 4, 1, 0xBEEF);
        let Some(&(s, t)) = pairs.first() else { continue };
        let prepared = pre_bfs(&g, s, t, 4);
        if prepared.graph.num_vertices() == 0 {
            continue;
        }
        let bytes = encode_payload(&prepared);
        let decoded = decode_payload(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", dataset.code()));
        assert_eq!(decoded.graph, *prepared.graph, "{}", dataset.code());
        assert_eq!(decoded.barrier, prepared.barrier, "{}", dataset.code());
        assert_eq!(decoded.header.k, 4);
    }
}

#[test]
fn batch_scheduler_agrees_with_interactive_sessions() {
    let handle = dataset_handle(Dataset::Amazon);
    let k = 6;
    let requests: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, 8, 42)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    assert!(!requests.is_empty());

    let scheduler = BatchScheduler::new(SchedulerConfig {
        preprocess_threads: 2,
        ..SchedulerConfig::default()
    });
    let outcome = scheduler.run_batch(&handle, &requests).unwrap();

    let mut session = HostSession::with_graph(
        handle.csr.clone(),
        SessionConfig { collect_paths: false, ..SessionConfig::default() },
    );
    for (req, batch_row) in requests.iter().zip(&outcome.results) {
        let interactive = session.run_query(*req).unwrap();
        assert_eq!(interactive.num_paths, batch_row.num_paths, "{req:?}");
    }
}

/// N client threads × M queries against one shared 4-CU runtime produce path
/// sets byte-identical to serial `HostSession` runs of the same queries.
#[test]
fn concurrent_sessions_match_serial_results_byte_for_byte() {
    let handle = dataset_handle(Dataset::SocEpinions);
    let k = 4;
    let queries: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, 12, 0xC0FFEE)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    assert!(queries.len() >= 4, "need a non-trivial workload");

    // Serial oracle: a classic private-runtime session, one query at a time.
    let mut serial = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());
    let expected: Vec<Vec<pefp::graph::Path>> =
        queries.iter().map(|q| canonicalize(serial.run_query(*q).unwrap().paths)).collect();

    // Concurrent run: 4 client threads, each a session on one shared 4-CU
    // runtime, every client running the full query list in a rotated order
    // so the threads genuinely interleave on the cluster.
    let runtime = HostRuntime::launch(
        handle.clone(),
        RuntimeConfig { compute_units: 4, ..RuntimeConfig::default() },
    );
    let clients = 4;
    let per_client: Vec<Vec<Vec<Vec<pefp::graph::VertexId>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let runtime = Arc::clone(&runtime);
                let queries = queries.clone();
                scope.spawn(move || {
                    let mut session = HostSession::attach(runtime);
                    (0..queries.len())
                        .map(|i| {
                            let q = queries[(i + c) % queries.len()];
                            let outcome = session.run_query(q).unwrap();
                            canonicalize(outcome.paths)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });
    for (c, results) in per_client.iter().enumerate() {
        for (i, got) in results.iter().enumerate() {
            let want = &expected[(i + c) % queries.len()];
            assert_eq!(got, want, "client {c}, slot {i}: concurrent != serial");
        }
    }
    let stats = runtime.stats();
    let total = (clients * queries.len()) as u64;
    assert_eq!(stats.completed, total);
    assert_eq!(stats.cache_hits + stats.cache_misses, total);
    // Every unique query misses at least once; two clients racing on the
    // same cold key may both miss, but the shared cache still absorbs the
    // bulk of the cross-tenant repetition.
    assert!(stats.cache_misses as usize >= queries.len());
    assert!(stats.cache_hits >= total / 2, "shared cache must serve most repeats");
    assert!(
        stats.virtual_makespan_cycles < stats.total_device_cycles,
        "4 tenants on 4 CUs must overlap in virtual time"
    );
}

/// Cancellation mid-stream (a sink break) stops the emission: the session
/// reports exactly the delivered prefix and the runtime keeps serving.
#[test]
fn cancellation_mid_stream_stops_emission() {
    use pefp::graph::generators::{layered_dag, layered_sink, layered_source};
    use pefp::graph::{CollectSink, FirstN};

    // 4^5 = 1024 result paths; the stream is cut after 8.
    let g = layered_dag(5, 4, 4, 1).to_csr();
    let (s, t) = (layered_source().0, layered_sink(5, 4).0);
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("layered", g),
        RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
    );
    let mut session = HostSession::attach(Arc::clone(&runtime));
    let mut sink = FirstN::new(8, CollectSink::new());
    let outcome = session.run_query_streaming(QueryRequest::new(s, t, 6), &mut sink).unwrap();
    assert_eq!(outcome.num_paths, 8, "exactly the delivered prefix is reported");
    assert_eq!(sink.into_inner().paths().len(), 8);
    assert_eq!(session.stats().emitted_paths, 8);

    // The runtime survives the cancellation and serves the next query fully.
    let full = session.run_query(QueryRequest::new(s, t, 6)).unwrap();
    assert_eq!(full.num_paths, 1024);
    let stats = runtime.stats();
    assert_eq!(stats.completed, 2);
}

/// Backpressure: with a 1-slot admission queue and the only worker wedged on
/// an undrained streaming job, the next submission is queued and the one
/// after that surfaces `QueueFull` instead of blocking.
#[test]
fn queue_full_surfaces_under_a_one_slot_queue() {
    use pefp::graph::generators::{layered_dag, layered_sink, layered_source};

    let g = layered_dag(5, 4, 4, 1).to_csr();
    let (s, t) = (layered_source().0, layered_sink(5, 4).0);
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("layered", g),
        RuntimeConfig { compute_units: 1, queue_capacity: 1, ..RuntimeConfig::default() },
    );
    let session = runtime.register_session();

    // Wedge the worker: a streaming job whose 1-path channel nobody drains.
    let (stream_ticket, rx) =
        runtime.submit_query_streaming(session, QueryRequest::new(s, t, 6), 1).unwrap();
    // Wait until the worker actually picked the job up (first path arrives).
    let first = rx.recv().expect("the streaming job must start");
    assert!(!first.is_empty());

    // One job fits the queue; the second is refused with QueueFull.
    let queued = runtime.submit_query(session, QueryRequest::new(s, t, 5), false).unwrap();
    let refused = runtime.submit_query(session, QueryRequest::new(s, t, 4), false);
    assert!(matches!(refused, Err(HostError::QueueFull)));
    assert_eq!(runtime.stats().queue_full_rejections, 1);

    // Unwedge: cancel the stream and drop the receiver; everything drains.
    stream_ticket.cancel();
    drop(rx);
    let streamed = stream_ticket.wait().unwrap();
    assert!(streamed.num_paths <= 1024);
    let queued = queued.wait().unwrap();
    assert_eq!(queued.num_paths, 0, "no source→sink path uses fewer than 6 hops");
    assert_eq!(runtime.queue_depth(), 0);
}

#[test]
fn invalid_input_is_rejected_at_every_layer() {
    let handle = dataset_handle(Dataset::Reactome);
    let n = handle.csr.num_vertices() as u32;
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());

    // Parse layer.
    assert!(matches!(session.run_text_query("QUERY one two three"), Err(HostError::QueryParse(_))));
    // Validation layer.
    assert!(matches!(
        session.run_query(QueryRequest::new(0, n + 5, 3)),
        Err(HostError::QueryInvalid(_))
    ));
    // Payload layer (corrupted bytes).
    let pairs = sample_reachable_pairs(&handle.csr, 3, 1, 1);
    let (s, t) = pairs[0];
    let prepared = pre_bfs(&handle.csr, s, t, 3);
    let mut bytes = encode_payload(&prepared).to_vec();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert!(matches!(decode_payload(&bytes), Err(HostError::PayloadCorrupt(_))));
    // Scheduler layer (whole batch rejected).
    let scheduler = BatchScheduler::new(SchedulerConfig::default());
    let bad = vec![QueryRequest::new(0, 1, 3), QueryRequest::new(0, n + 1, 3)];
    assert!(scheduler.run_batch(&handle, &bad).is_err());
}

/// Snapshot isolation under live updates: a STREAM job admitted in epoch N
/// keeps emitting epoch-N answers even though an update lands epoch N+1
/// mid-stream, while a query admitted *after* the update sees epoch N+1.
#[test]
fn mid_stream_updates_do_not_leak_into_pinned_jobs() {
    use pefp::graph::generators::{layered_dag, layered_sink, layered_source};
    use pefp::graph::{GraphDelta, VertexId};

    // 4^5 = 1024 source→sink paths at k = 6; each of the source's 4
    // successors carries 4^4 = 256 of them.
    let handle = GraphHandle::from_csr("layered", layered_dag(5, 4, 4, 1).to_csr());
    let (s, t) = (layered_source().0, layered_sink(5, 4).0);
    let first_hop = handle.csr.successors(VertexId(s))[0];
    let runtime = HostRuntime::launch(
        handle.clone(),
        RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
    );
    let session = runtime.register_session();
    assert_eq!(runtime.epoch(), 0);

    // Start the stream on a tiny channel so the worker is paced by us, and
    // wait until it has provably begun (first path delivered).
    let (ticket, rx) =
        runtime.submit_query_streaming(session, QueryRequest::new(s, t, 6), 2).unwrap();
    let mut received = vec![rx.recv().expect("stream must start")];

    // Epoch N+1 lands mid-stream: the first source edge disappears.
    let mut delta = GraphDelta::new();
    delta.remove_edge(VertexId(s), first_hop);
    let epoch = runtime.apply_updates(&delta);
    assert_eq!(epoch, 1);
    assert_eq!(runtime.epoch(), 1);

    // A query admitted after the update sees epoch N+1: 3 surviving source
    // edges × 256 paths each. (2 CUs, so it runs beside the wedged stream.)
    let post = runtime.submit_query(session, QueryRequest::new(s, t, 6), false).unwrap();
    assert_eq!(post.wait().unwrap().num_paths, 768);

    // The pinned stream still answers from epoch N: all 1024 paths arrive,
    // including the 256 through the edge that no longer exists.
    received.extend(rx.iter());
    assert_eq!(ticket.wait().unwrap().num_paths, 1024);
    assert_eq!(received.len(), 1024);
    let through_removed = received.iter().filter(|p| p[1] == first_hop).count();
    assert_eq!(through_removed, 256, "epoch-N paths through the removed edge");
}

/// Exact touched-vertex invalidation: an update touching component A evicts
/// precisely the cached prepared queries whose touched set intersects it;
/// the entry for the disjoint component B survives and keeps serving hits.
#[test]
fn updates_evict_exactly_the_touched_cache_entries() {
    use pefp::graph::{CsrGraph, GraphDelta, VertexId};

    // Two disconnected diamonds: A = {0,1,2,3}, B = {4,5,6,7}.
    let g =
        CsrGraph::from_edges(8, &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (4, 6), (5, 7), (6, 7)]);
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("two-diamonds", g),
        RuntimeConfig { compute_units: 1, ..RuntimeConfig::default() },
    );
    let session = runtime.register_session();
    let query_a = QueryRequest::new(0, 3, 3);
    let query_b = QueryRequest::new(4, 7, 3);

    let run = |q: QueryRequest| {
        runtime.submit_query(session, q, false).unwrap().wait().unwrap().num_paths
    };
    assert_eq!(run(query_a), 2);
    assert_eq!(run(query_a), 2);
    assert_eq!(run(query_b), 2);
    assert_eq!(run(query_b), 2);
    let stats = runtime.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (2, 2));
    assert_eq!(stats.cached_prepared_queries, 2);

    // Update inside component A only: edge 1 → 2 creates the 3-hop path
    // 0-1-2-3 and touches nothing in component B.
    let mut delta = GraphDelta::new();
    delta.insert_edge(VertexId(1), VertexId(2));
    runtime.apply_updates(&delta);
    let stats = runtime.stats();
    assert_eq!(stats.cache_invalidated, 1, "only A's entry is evicted");
    assert_eq!(stats.cached_prepared_queries, 1, "B's entry survives");

    // B still hits the cache; A misses, recomputes, and sees the new path.
    assert_eq!(run(query_b), 2);
    assert_eq!(run(query_a), 3);
    let stats = runtime.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (3, 3));
    assert_eq!(stats.graph_updates, 1);
    assert_eq!(stats.epoch, 1);
}
