//! Cross-crate integration tests of the host runtime: text query → session →
//! payload serialisation → DMA → simulated device → results, checked against
//! the CPU baselines.

use pefp::baselines::{naive_dfs_enumerate, Join};
use pefp::core::pre_bfs;
use pefp::graph::paths::canonicalize;
use pefp::graph::sampling::sample_reachable_pairs;
use pefp::graph::{Dataset, ScaleProfile};
use pefp::host::binfmt::{decode_payload, encode_payload};
use pefp::host::{
    BatchScheduler, GraphHandle, HostError, HostSession, QueryRequest, SchedulerConfig,
    SessionConfig,
};

fn dataset_handle(dataset: Dataset) -> GraphHandle {
    GraphHandle::from_csr(
        format!("test:{}", dataset.code()),
        dataset.generate(ScaleProfile::Tiny).to_csr(),
    )
}

#[test]
fn session_results_match_join_and_naive_on_a_dataset_standin() {
    let handle = dataset_handle(Dataset::SocEpinions);
    let g = handle.csr.clone();
    let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());

    let k = 4;
    let pairs = sample_reachable_pairs(&g, k, 5, 0xA11CE);
    assert!(!pairs.is_empty(), "workload sampler found no reachable pairs");
    for (s, t) in pairs {
        let outcome = session.run_query(QueryRequest { s, t, k }).unwrap();
        let naive = naive_dfs_enumerate(&g, s, t, k);
        let join = Join::new().enumerate(&g, s, t, k);
        assert_eq!(outcome.num_paths, naive.len() as u64, "{s}->{t}");
        assert_eq!(canonicalize(outcome.paths.clone()), canonicalize(naive));
        assert_eq!(outcome.num_paths, join.len() as u64);
    }
    assert_eq!(session.stats().rejected, 0);
}

#[test]
fn text_protocol_round_trips_through_the_session() {
    let handle = dataset_handle(Dataset::TwitterSocial);
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());
    let pairs = sample_reachable_pairs(&handle.csr, 5, 1, 7);
    let Some(&(s, t)) = pairs.first() else {
        panic!("no reachable pair in the stand-in");
    };
    let text = format!("QUERY {} {} 5", s.0, t.0);
    let outcome = session.run_text_query(&text).unwrap();
    assert_eq!(outcome.request.to_wire(), text);
    let oracle = naive_dfs_enumerate(&handle.csr, s, t, 5);
    assert_eq!(outcome.num_paths, oracle.len() as u64);
}

#[test]
fn payload_survives_the_wire_for_every_dataset_standin() {
    for dataset in Dataset::all() {
        let g = dataset.generate(ScaleProfile::Tiny).to_csr();
        let pairs = sample_reachable_pairs(&g, 4, 1, 0xBEEF);
        let Some(&(s, t)) = pairs.first() else { continue };
        let prepared = pre_bfs(&g, s, t, 4);
        if prepared.graph.num_vertices() == 0 {
            continue;
        }
        let bytes = encode_payload(&prepared);
        let decoded = decode_payload(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", dataset.code()));
        assert_eq!(decoded.graph, *prepared.graph, "{}", dataset.code());
        assert_eq!(decoded.barrier, prepared.barrier, "{}", dataset.code());
        assert_eq!(decoded.header.k, 4);
    }
}

#[test]
fn batch_scheduler_agrees_with_interactive_sessions() {
    let handle = dataset_handle(Dataset::Amazon);
    let k = 6;
    let requests: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, 8, 42)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    assert!(!requests.is_empty());

    let scheduler = BatchScheduler::new(SchedulerConfig {
        preprocess_threads: 2,
        ..SchedulerConfig::default()
    });
    let outcome = scheduler.run_batch(&handle, &requests).unwrap();

    let mut session = HostSession::with_graph(
        handle.csr.clone(),
        SessionConfig { collect_paths: false, ..SessionConfig::default() },
    );
    for (req, batch_row) in requests.iter().zip(&outcome.results) {
        let interactive = session.run_query(*req).unwrap();
        assert_eq!(interactive.num_paths, batch_row.num_paths, "{req:?}");
    }
}

#[test]
fn invalid_input_is_rejected_at_every_layer() {
    let handle = dataset_handle(Dataset::Reactome);
    let n = handle.csr.num_vertices() as u32;
    let mut session = HostSession::with_graph(handle.csr.clone(), SessionConfig::default());

    // Parse layer.
    assert!(matches!(session.run_text_query("QUERY one two three"), Err(HostError::QueryParse(_))));
    // Validation layer.
    assert!(matches!(
        session.run_query(QueryRequest::new(0, n + 5, 3)),
        Err(HostError::QueryInvalid(_))
    ));
    // Payload layer (corrupted bytes).
    let pairs = sample_reachable_pairs(&handle.csr, 3, 1, 1);
    let (s, t) = pairs[0];
    let prepared = pre_bfs(&handle.csr, s, t, 3);
    let mut bytes = encode_payload(&prepared).to_vec();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert!(matches!(decode_payload(&bytes), Err(HostError::PayloadCorrupt(_))));
    // Scheduler layer (whole batch rejected).
    let scheduler = BatchScheduler::new(SchedulerConfig::default());
    let bad = vec![QueryRequest::new(0, 1, 3), QueryRequest::new(0, n + 1, 3)];
    assert!(scheduler.run_batch(&handle, &bad).is_err());
}
