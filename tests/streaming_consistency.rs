//! Integration tests of the streaming layer against offline enumeration: the
//! cycles the real-time detector reports must be exactly the s-t k-paths an
//! offline engine finds on the same graph snapshot, independent of which
//! enumeration engine the detector delegates to.

use pefp::baselines::naive_dfs_enumerate;
use pefp::enumerate_paths;
use pefp::graph::paths::{canonicalize, is_simple};
use pefp::graph::VertexId;
use pefp::streaming::{
    CycleDetector, DetectorConfig, DetectorEngine, DynamicGraph, Transaction, TransactionGenerator,
    TransactionGeneratorConfig,
};

fn stream(seed: u64, count: usize) -> Vec<Transaction> {
    TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: 60,
        fraud_probability: 0.08,
        ring_size: 3,
        seed,
    })
    .stream(count)
}

#[test]
fn detector_cycles_match_offline_enumeration_on_the_same_snapshot() {
    let txs = stream(5, 250);
    let mut detector = CycleDetector::new(DetectorConfig {
        max_cycle_hops: 5,
        window_size: 1_000_000,
        engine: DetectorEngine::PefpSimulated,
        ..DetectorConfig::default()
    });
    // Maintain a shadow graph by hand and cross-check every alert.
    let mut shadow = DynamicGraph::new();
    for tx in &txs {
        let alert = detector.ingest(tx);
        // Offline check on the shadow graph *before* inserting the new edge.
        let s = VertexId(tx.to);
        let t = VertexId(tx.from);
        let expected =
            if s != t && s.index() < shadow.num_vertices() && t.index() < shadow.num_vertices() {
                naive_dfs_enumerate(&shadow.snapshot_csr(), s, t, 4)
            } else {
                Vec::new()
            };
        assert_eq!(
            canonicalize(alert.cycles.clone()),
            canonicalize(expected),
            "transaction {} -> {} at ts {}",
            tx.from,
            tx.to,
            tx.timestamp
        );
        shadow.insert_edge(t, s, tx.timestamp);
    }
}

#[test]
fn engines_report_identical_alert_sets() {
    let txs = stream(11, 400);
    let mut reference: Option<Vec<(u64, usize)>> = None;
    for engine in [DetectorEngine::NaiveDfs, DetectorEngine::JoinCpu, DetectorEngine::PefpSimulated]
    {
        let mut detector = CycleDetector::new(DetectorConfig {
            max_cycle_hops: 6,
            window_size: 1_000_000,
            engine,
            ..DetectorConfig::default()
        });
        let alerts = detector.ingest_stream(&txs);
        let signature: Vec<(u64, usize)> =
            alerts.iter().map(|a| (a.transaction.timestamp, a.cycles.len())).collect();
        match &reference {
            None => reference = Some(signature),
            Some(expected) => assert_eq!(&signature, expected, "engine {engine:?}"),
        }
    }
}

#[test]
fn every_reported_cycle_is_simple_and_closed_by_the_new_edge() {
    let txs = stream(23, 300);
    let mut detector = CycleDetector::new(DetectorConfig {
        max_cycle_hops: 5,
        window_size: 1_000_000,
        engine: DetectorEngine::PefpSimulated,
        ..DetectorConfig::default()
    });
    let mut total_cycles = 0usize;
    for tx in &txs {
        let alert = detector.ingest(tx);
        for cycle in &alert.cycles {
            assert!(is_simple(cycle));
            assert!(cycle.len() >= 2);
            assert!(cycle.len() - 1 <= 4, "path part must be at most k-1 hops");
            assert_eq!(cycle[0], VertexId(tx.to), "path starts at the new edge's head");
            assert_eq!(
                *cycle.last().unwrap(),
                VertexId(tx.from),
                "path ends at the new edge's tail"
            );
        }
        total_cycles += alert.cycles.len();
    }
    assert_eq!(detector.stats().cycles as usize, total_cycles);
}

#[test]
fn dynamic_snapshot_queries_agree_with_a_statically_built_graph() {
    // Build the same edge set dynamically (with some inserts later removed)
    // and statically, then compare a PEFP query on both.
    let mut dynamic = DynamicGraph::with_vertices(30);
    let mut static_edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..29u32 {
        dynamic.insert_edge(VertexId(i), VertexId(i + 1), i as u64);
        static_edges.push((i, i + 1));
    }
    for i in (0..25u32).step_by(5) {
        dynamic.insert_edge(VertexId(i), VertexId(i + 3), 100 + i as u64);
        static_edges.push((i, i + 3));
    }
    // Insert and then remove a few distractor edges.
    for i in 0..10u32 {
        dynamic.insert_edge(VertexId(i + 15), VertexId(i), 200 + i as u64);
    }
    for i in 0..10u32 {
        assert!(dynamic.remove_edge(VertexId(i + 15), VertexId(i)));
    }

    let snapshot = dynamic.snapshot_csr();
    let static_graph = pefp::graph::CsrGraph::from_edges(30, &static_edges);
    assert_eq!(snapshot, static_graph);

    let a = enumerate_paths(&snapshot, VertexId(0), VertexId(12), 8);
    let b = enumerate_paths(&static_graph, VertexId(0), VertexId(12), 8);
    assert_eq!(a.num_paths, b.num_paths);
    assert_eq!(canonicalize(a.paths), canonicalize(b.paths));
}

#[test]
fn window_expiry_removes_old_cycles_but_keeps_recent_ones() {
    let mut detector = CycleDetector::new(DetectorConfig {
        max_cycle_hops: 4,
        window_size: 4,
        engine: DetectorEngine::NaiveDfs,
        ..DetectorConfig::default()
    });
    // Old triangle, fully inside one window.
    detector.ingest(&Transaction::new(0, 0, 1, 1.0));
    detector.ingest(&Transaction::new(1, 1, 2, 1.0));
    assert!(detector.ingest(&Transaction::new(2, 2, 0, 1.0)).is_alert());
    // Much later, the same closing edge finds nothing: the feeder edges aged out.
    assert!(!detector.ingest(&Transaction::new(50, 2, 0, 1.0)).is_alert());
    // But a fresh triangle inside the new window still alerts.
    detector.ingest(&Transaction::new(51, 0, 1, 1.0));
    detector.ingest(&Transaction::new(52, 1, 2, 1.0));
    assert!(detector.ingest(&Transaction::new(53, 2, 0, 1.0)).is_alert());
}
