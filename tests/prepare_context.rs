//! Integration tests for the O(touched) preprocessing contract: a reused
//! [`PrepareContext`] must make per-query Pre-BFS cost proportional to the
//! query-relevant subgraph, never to the data graph, and the restructured
//! `PreparedQuery` must not clone the data graph on any variant path.

use pefp::core::{
    no_prebfs_with, pre_bfs, pre_bfs_with, prepare_with, run_prepared, PefpVariant, PrepareContext,
};
use pefp::graph::{CsrBuilder, CsrGraph, VertexId};
use std::sync::Arc;

/// A large graph whose k-hop neighbourhood around the query endpoints is
/// tiny: a 12-vertex corridor `0 -> 1 -> ... -> 11` embedded in a graph of
/// `n` vertices whose bulk is a long disconnected chain.
fn corridor_in_haystack(n: usize) -> Arc<CsrGraph> {
    assert!(n > 64);
    let mut b = CsrBuilder::with_edge_capacity(n, n);
    for v in 0..11u32 {
        b.add_edge(VertexId(v), VertexId(v + 1));
    }
    // The haystack: a chain over the remaining vertices, unreachable from the
    // corridor in either direction.
    for v in 12..(n as u32 - 1) {
        b.add_edge(VertexId(v), VertexId(v + 1));
    }
    Arc::new(b.build())
}

#[test]
fn prebfs_touches_the_frontier_not_the_graph() {
    let n = 60_000;
    let g = corridor_in_haystack(n);
    let mut ctx = PrepareContext::new();
    for round in 0..8 {
        let prep = pre_bfs_with(&mut ctx, &g, VertexId(0), VertexId(11), 6);
        assert!(prep.feasible || prep.graph.num_vertices() <= 12, "round {round}");
        let stats = ctx.stats();
        // Both (k-1)-hop frontiers live inside the 12-vertex corridor.
        assert!(
            stats.last_touched <= 24,
            "Pre-BFS touched {} vertices on a graph of {n} with a 12-vertex corridor",
            stats.last_touched
        );
    }
    // The reverse CSR is built once for the whole sequence, not per query.
    assert_eq!(ctx.stats().reverse_builds, 1);
    assert_eq!(ctx.stats().queries, 8);
}

#[test]
fn prepared_query_memory_is_output_sensitive() {
    let n = 60_000;
    let g = corridor_in_haystack(n);
    let mut ctx = PrepareContext::new();
    let prep = pre_bfs_with(&mut ctx, &g, VertexId(0), VertexId(11), 11);
    // The induced subgraph, its barrier and its id mapping are all sized by
    // the corridor, not by |V|.
    assert!(prep.feasible);
    assert_eq!(prep.graph.num_vertices(), 12);
    assert_eq!(prep.barrier.len(), prep.graph.num_vertices());
    assert_eq!(prep.mapping.as_ref().unwrap().num_kept(), prep.graph.num_vertices());
    // G' is stored exactly once: the prepared query and its mapping share it.
    assert!(Arc::ptr_eq(&prep.graph, &prep.mapping.as_ref().unwrap().graph));
}

#[test]
fn no_variant_path_clones_the_data_graph() {
    let g = corridor_in_haystack(4_096);
    let baseline = Arc::strong_count(&g);
    let mut ctx = PrepareContext::new();

    // Full variant: the prepared graph is the induced subgraph, which is a
    // fresh small allocation, never a clone of G.
    let full = prepare_with(&mut ctx, &g, VertexId(0), VertexId(11), 6, PefpVariant::Full);
    assert!(full.graph.num_vertices() < 100);

    // No-Pre-BFS ships the full graph: same allocation, reference-counted.
    let ablation = no_prebfs_with(&mut ctx, &g, VertexId(0), VertexId(11), 6);
    assert!(Arc::ptr_eq(&ablation.graph, &g));

    // Trivial paths (s == t, k == 0) also share the data graph.
    let same = pre_bfs_with(&mut ctx, &g, VertexId(5), VertexId(5), 6);
    assert!(Arc::ptr_eq(&same.graph, &g));
    let zero = prepare_with(&mut ctx, &g, VertexId(0), VertexId(11), 0, PefpVariant::NoPreBfs);
    assert!(Arc::ptr_eq(&zero.graph, &g));

    // Each shared holder bumped the refcount instead of deep-copying; the
    // context itself holds one reference (the reverse-cache key).
    assert_eq!(Arc::strong_count(&g), baseline + 4);
}

#[test]
fn context_prepared_queries_run_to_the_same_results() {
    let g = corridor_in_haystack(1_000);
    let device = pefp::fpga::DeviceConfig::alveo_u200();
    let mut ctx = PrepareContext::new();
    for variant in PefpVariant::all() {
        let prep = prepare_with(&mut ctx, &g, VertexId(0), VertexId(11), 11, variant);
        let result = run_prepared(&prep, variant.engine_options(), &device);
        assert_eq!(result.num_paths, 1, "variant {}", variant.name());
        assert_eq!(
            result.paths[0],
            (0..=11).map(VertexId).collect::<Vec<_>>(),
            "variant {}",
            variant.name()
        );
    }
}

#[test]
fn dirty_context_output_is_byte_identical_to_one_shot() {
    // Deterministic cross-check on a structured graph (the proptest shim
    // covers random Chung-Lu graphs; this pins an exact-equality case).
    let g = Arc::new(pefp::graph::generators::chung_lu(600, 6.0, 2.2, 99).to_csr());
    let mut ctx = PrepareContext::new();
    for &(s, t, k) in &[(0u32, 300u32, 5u32), (17, 4, 3), (0, 300, 5), (550, 1, 4)] {
        let a = pre_bfs_with(&mut ctx, &g, VertexId(s), VertexId(t), k);
        let b = pre_bfs(&g, VertexId(s), VertexId(t), k);
        assert_eq!(*a.graph, *b.graph);
        assert_eq!(a.barrier, b.barrier);
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(
            a.mapping.as_ref().map(|m| m.old_of_new.clone()),
            b.mapping.as_ref().map(|m| m.old_of_new.clone())
        );
    }
}
