//! Property-based tests over randomly generated graphs and streams, covering
//! the invariants introduced by the host and streaming layers plus the new
//! baselines and estimators.

use proptest::prelude::*;

use pefp::baselines::{naive_dfs_enumerate, yen_enumerate};
use pefp::core::{count_simple_paths, count_st_walks, pre_bfs, pre_bfs_with, PrepareContext};
use pefp::enumerate_paths;
use pefp::graph::generators::chung_lu;
use pefp::graph::paths::canonicalize;
use pefp::graph::{CsrGraph, VertexId};
use pefp::host::binfmt::{decode_payload, encode_payload};
use pefp::streaming::DynamicGraph;
use std::sync::Arc;

/// Strategy: a random directed graph with up to `max_n` vertices and a
/// bounded number of random edges (self-loops filtered out).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |mut edges| {
            edges.retain(|(a, b)| a != b);
            edges.sort_unstable();
            edges.dedup();
            CsrGraph::from_edges(n as usize, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's ranking reduction enumerates exactly the same path set as the
    /// bounded-DFS oracle.
    #[test]
    fn yen_matches_naive_dfs((g, s, t, k) in arb_graph(24, 70).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        (Just(g), 0..n, 0..n, 1u32..5)
    })) {
        prop_assume!(s != t);
        let yen = canonicalize(yen_enumerate(&g, VertexId(s), VertexId(t), k));
        let oracle = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
        prop_assert_eq!(yen, oracle);
    }

    /// The walk-count estimator upper-bounds the exact simple-path count, and
    /// the exact count matches the enumeration length.
    #[test]
    fn counting_bounds_hold((g, s, t, k) in arb_graph(20, 60).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        (Just(g), 0..n, 0..n, 1u32..5)
    })) {
        prop_assume!(s != t);
        let s = VertexId(s);
        let t = VertexId(t);
        let exact = count_simple_paths(&g, s, t, k);
        let walks = count_st_walks(&g, s, t, k);
        prop_assert!(walks >= exact);
        let enumerated = naive_dfs_enumerate(&g, s, t, k).len() as u64;
        prop_assert_eq!(exact, enumerated);
    }

    /// The full pipeline (facade entry point) agrees with the oracle on
    /// arbitrary graphs.
    #[test]
    fn pefp_pipeline_matches_oracle((g, s, t, k) in arb_graph(22, 66).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        (Just(g), 0..n, 0..n, 1u32..5)
    })) {
        prop_assume!(s != t);
        let s = VertexId(s);
        let t = VertexId(t);
        let result = enumerate_paths(&g, s, t, k);
        let oracle = naive_dfs_enumerate(&g, s, t, k);
        prop_assert_eq!(result.num_paths, oracle.len() as u64);
        prop_assert_eq!(canonicalize(result.paths), canonicalize(oracle));
    }

    /// The device payload format round-trips every prepared query.
    #[test]
    fn payload_round_trip((g, s, t, k) in arb_graph(30, 90).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        (Just(g), 0..n, 0..n, 1u32..6)
    })) {
        prop_assume!(s != t);
        let prepared = pre_bfs(&g, VertexId(s), VertexId(t), k);
        let bytes = encode_payload(&prepared);
        let decoded = decode_payload(&bytes).unwrap();
        prop_assert_eq!(&decoded.graph, &*prepared.graph);
        prop_assert_eq!(decoded.barrier, prepared.barrier);
        prop_assert_eq!(decoded.header.k, prepared.k);
    }

    /// Building a graph through dynamic insertions (in any order, with
    /// duplicate inserts) snapshots to exactly the statically built CSR.
    #[test]
    fn dynamic_graph_snapshot_equals_static_build(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..160),
    ) {
        let clean: Vec<(u32, u32)> = {
            let mut e: Vec<(u32, u32)> = edges.iter().copied().filter(|(a, b)| a != b).collect();
            e.sort_unstable();
            e.dedup();
            e
        };
        let n = 40usize;
        let static_graph = CsrGraph::from_edges(n, &clean);
        let mut dynamic = DynamicGraph::with_vertices(n);
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a != b {
                dynamic.insert_edge(VertexId(a), VertexId(b), i as u64);
            }
        }
        prop_assert_eq!(dynamic.snapshot_csr(), static_graph);
        prop_assert_eq!(dynamic.num_edges(), clean.len());
    }

    /// Pre-BFS never drops a result: enumeration on the pruned graph
    /// (translated back) equals enumeration on the original graph.
    #[test]
    fn pre_bfs_preserves_all_results((g, s, t, k) in arb_graph(26, 80).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        (Just(g), 0..n, 0..n, 1u32..5)
    })) {
        prop_assume!(s != t);
        let s = VertexId(s);
        let t = VertexId(t);
        let prepared = pre_bfs(&g, s, t, k);
        let original = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        let pruned = if prepared.feasible {
            let on_sub = naive_dfs_enumerate(&prepared.graph, prepared.s, prepared.t, prepared.k);
            canonicalize(on_sub.iter().map(|p| prepared.translate_path(p)).collect())
        } else {
            Vec::new()
        };
        prop_assert_eq!(pruned, original);
    }

    /// A dirty, reused `PrepareContext` produces byte-identical prepared
    /// queries (graph, barrier, mapping, feasibility) to the one-shot
    /// `pre_bfs` across random Chung-Lu graphs and query triples: epoch
    /// stamping must never leak state from one query into the next.
    #[test]
    fn dirty_prepare_context_matches_one_shot(
        (n, degree, seed, queries) in (40usize..160, 2u32..8, 0u64..1_000,
            proptest::collection::vec((0u32..1_000_000, 0u32..1_000_000, 0u32..6), 1..8)),
    ) {
        let g = Arc::new(chung_lu(n, degree as f64, 2.2, seed).to_csr());
        let mut ctx = PrepareContext::new();
        for (raw_s, raw_t, k) in queries {
            let s = VertexId(raw_s % n as u32);
            let t = VertexId(raw_t % n as u32);
            let with_ctx = pre_bfs_with(&mut ctx, &g, s, t, k);
            let one_shot = pre_bfs(&g, s, t, k);
            prop_assert_eq!(&*with_ctx.graph, &*one_shot.graph);
            prop_assert_eq!(&with_ctx.barrier, &one_shot.barrier);
            prop_assert_eq!(with_ctx.feasible, one_shot.feasible);
            prop_assert_eq!((with_ctx.s, with_ctx.t, with_ctx.k),
                            (one_shot.s, one_shot.t, one_shot.k));
            let ctx_map = with_ctx.mapping.as_ref().map(|m| &m.old_of_new);
            let one_map = one_shot.mapping.as_ref().map(|m| &m.old_of_new);
            prop_assert_eq!(ctx_map, one_map);
        }
        // However many queries ran, the context built the reverse CSR at
        // most once for the shared graph.
        prop_assert!(ctx.stats().reverse_builds <= 1);
    }
}

/// The proptest shim's shrinker minimises a seeded failure: a predicate
/// failing for every `v >= 17` over `0..100` must shrink any failing start
/// down to exactly `(17,)` — the smallest witness the range admits — via the
/// public greedy loop the `proptest!` macro itself invokes on failure.
#[test]
fn seeded_proptest_failures_shrink_to_the_minimal_witness() {
    use proptest::test_runner::shrink_failure;

    let strategy = (0u32..100,);
    let run = |(v,): (u32,)| {
        if v >= 17 {
            Err(TestCaseError::fail(format!("{v} crossed the threshold")))
        } else {
            Ok(())
        }
    };
    for start in [17u32, 23, 64, 99] {
        let initial = run((start,)).expect_err("seed case must fail");
        let (minimal, err, iters) = shrink_failure(&strategy, (start,), initial, 1024, &run);
        assert_eq!(minimal, (17,), "starting from {start}");
        assert!(err.to_string().contains("17 crossed the threshold"));
        assert!(iters <= 64, "threshold found by binary descent, not scan ({iters} runs)");
    }
}

/// Composite witnesses shrink too: a failing (vector, scalar) pair truncates
/// the vector toward the minimum length and floors the scalar, component by
/// component, through the same tuple strategy the macro builds.
#[test]
fn composite_proptest_failures_shrink_component_wise() {
    use proptest::test_runner::shrink_failure;

    // Fails when the vector has >= 2 elements AND the scalar is >= 10.
    let strategy = (proptest::collection::vec(0u32..50, 0..16), 0u32..40);
    let run = |(v, x): (Vec<u32>, u32)| {
        if v.len() >= 2 && x >= 10 {
            Err(TestCaseError::fail("both components are large"))
        } else {
            Ok(())
        }
    };
    let seed = (vec![7, 3, 9, 12, 30, 44], 33u32);
    let initial = run(seed.clone()).expect_err("seed case must fail");
    let (minimal, _, _) = shrink_failure(&strategy, seed, initial, 2048, &run);
    assert_eq!(minimal, (vec![0, 0], 10));
}
