//! End-to-end tests of the query server's streaming and batch commands.
//!
//! The unit tests in `pefp-host::server` cover the protocol on a diamond
//! graph; these tests drive `STREAM` against a query with a four-digit result
//! set so the chunking, default limit, explicit limits and the hard ceiling
//! are all exercised for real, plus the `BATCH ... CUS=n` command end to end.

use pefp::graph::generators::{layered_dag, layered_sink, layered_source};
use pefp::host::server::{
    handle_line, serve, Reply, DEFAULT_STREAM_LIMIT, MAX_INLINE_PATHS, MAX_STREAM_LIMIT,
};
use pefp::host::{HostSession, SessionConfig};
use std::io::Cursor;

/// A dense layered DAG with 4^5 = 1024 source→sink paths, all of length 6.
fn layered_session() -> (HostSession, u32, u32) {
    let g = layered_dag(5, 4, 4, 1).to_csr();
    let s = layered_source().0;
    let t = layered_sink(5, 4).0;
    (HostSession::with_graph(g, SessionConfig::default()), s, t)
}

fn expect_stream(reply: Reply) -> Vec<String> {
    match reply {
        Reply::Stream(chunks) => chunks,
        other => panic!("expected a stream reply, got {other:?}"),
    }
}

#[test]
fn stream_applies_the_default_limit_in_full_chunks() {
    let (mut session, s, t) = layered_session();
    let chunks = expect_stream(handle_line(&mut session, &format!("STREAM {s} {t} 6")));
    // 100 paths in chunks of MAX_INLINE_PATHS, plus the end line.
    let expected_chunks = (DEFAULT_STREAM_LIMIT as usize).div_ceil(MAX_INLINE_PATHS);
    assert_eq!(chunks.len(), expected_chunks + 1);
    for chunk in &chunks[..expected_chunks] {
        assert!(chunk.starts_with("paths "), "{chunk}");
        assert_eq!(chunk.matches("->").count(), 6 * MAX_INLINE_PATHS, "6 hops per path");
    }
    assert_eq!(chunks.last().unwrap(), &format!("end streamed=100 limit={DEFAULT_STREAM_LIMIT}"));
}

#[test]
fn stream_with_explicit_limit_stops_exactly_there() {
    let (mut session, s, t) = layered_session();
    let chunks = expect_stream(handle_line(&mut session, &format!("STREAM {s} {t} 6 7")));
    // 7 paths: one full chunk of 5, one partial chunk of 2, one end line.
    assert_eq!(chunks.len(), 3);
    assert_eq!(chunks[0].matches("->").count(), 6 * MAX_INLINE_PATHS);
    assert_eq!(chunks[1].matches("->").count(), 6 * 2);
    assert_eq!(chunks[2], "end streamed=7 limit=7");
    // The session recorded only the emitted paths, nothing materialised.
    assert_eq!(session.stats().materialised_paths, 0);
    assert_eq!(session.stats().emitted_paths, 7);
}

#[test]
fn stream_limit_is_clamped_to_the_hard_ceiling() {
    let (mut session, s, t) = layered_session();
    let over_the_top = MAX_STREAM_LIMIT * 5;
    let chunks =
        expect_stream(handle_line(&mut session, &format!("STREAM {s} {t} 6 {over_the_top}")));
    // The ceiling exceeds the 1024-path result set, so everything streams.
    assert_eq!(chunks.last().unwrap(), &format!("end streamed=1024 limit={MAX_STREAM_LIMIT}"));
    assert_eq!(chunks.len(), 1024usize.div_ceil(MAX_INLINE_PATHS) + 1);
    // Every streamed path is distinct.
    let mut seen = std::collections::HashSet::new();
    for chunk in &chunks[..chunks.len() - 1] {
        for path in chunk.trim_start_matches("paths ").split(' ') {
            assert!(seen.insert(path.to_string()), "duplicate path {path}");
        }
    }
    assert_eq!(seen.len(), 1024);
}

#[test]
fn stream_zero_limit_never_runs_the_engine() {
    let (mut session, s, t) = layered_session();
    let chunks = expect_stream(handle_line(&mut session, &format!("STREAM {s} {t} 6 0")));
    assert_eq!(chunks, vec!["end streamed=0 limit=0".to_string()]);
    assert_eq!(session.stats().queries, 0, "a zero limit is answered host-side");
}

#[test]
fn stream_renders_one_prefixed_line_per_chunk_through_serve() {
    let (mut session, s, t) = layered_session();
    let script = format!("STREAM {s} {t} 6 12\nQUIT\n");
    let mut output = Vec::new();
    let served = serve(&mut session, Cursor::new(script), &mut output).unwrap();
    assert_eq!(served, 2);
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // 3 path chunks (5 + 5 + 2) + end line + bye.
    assert_eq!(lines.len(), 5, "{lines:?}");
    assert!(lines.iter().all(|l| l.starts_with("OK ")), "{lines:?}");
    assert!(lines[3].contains("end streamed=12 limit=12"));
}

#[test]
fn batch_command_counts_the_whole_result_set_on_multiple_cus() {
    let (mut session, s, t) = layered_session();
    // The layered query twice (deduplicated) plus an infeasible k=5 variant
    // (every source->sink path needs exactly 6 hops).
    let line = format!("BATCH {s} {t} 6 {s} {t} 6 {s} {t} 5 CUS=2");
    match handle_line(&mut session, &line) {
        Reply::Ok(msg) => {
            assert!(msg.contains("queries=3"), "{msg}");
            assert!(msg.contains("unique=2"), "{msg}");
            assert!(msg.contains("cus=2"), "{msg}");
            // 1024 paths for each layered slot, none for the k=5 variant.
            assert!(msg.contains("paths=2048"), "{msg}");
            assert!(msg.contains("measured_speedup="), "{msg}");
            assert!(msg.contains("predicted_makespan_cycles="), "{msg}");
        }
        other => panic!("unexpected reply {other:?}"),
    }
}
