//! Integration tests for the host-side planner, the result-size estimators
//! and the resource model: sizing decisions must never change query answers,
//! estimates must bound reality, and the default configuration must fit the
//! card the paper uses.

use pefp::core::{
    count_simple_paths, count_st_walks, plan_query, prepare, run_prepared, PefpVariant,
    QueryEstimate,
};
use pefp::fpga::{DeviceConfig, ModuleCosts, ResourceBudget, ResourceEstimate};
use pefp::graph::sampling::sample_reachable_pairs;
use pefp::graph::{Dataset, ScaleProfile};

#[test]
fn planner_never_changes_the_answer_across_datasets() {
    let device = DeviceConfig::alveo_u200();
    for dataset in [Dataset::Reactome, Dataset::WikiTalk, Dataset::BerkStan, Dataset::Amazon] {
        let g = dataset.generate(ScaleProfile::Tiny).to_csr();
        let k = 4;
        for (s, t) in sample_reachable_pairs(&g, k, 3, 0xD1CE) {
            let prepared = prepare(&g, s, t, k, PefpVariant::Full);
            let plan = plan_query(&prepared, &device);
            assert!(plan.options.validate().is_empty(), "{}", dataset.code());
            let planned = run_prepared(&prepared, plan.options.clone(), &device);
            let default = run_prepared(&prepared, PefpVariant::Full.engine_options(), &device);
            assert_eq!(planned.num_paths, default.num_paths, "{} {s}->{t}", dataset.code());
        }
    }
}

#[test]
fn walk_count_bounds_the_simple_path_count_and_the_engine_output() {
    let device = DeviceConfig::alveo_u200();
    let g = Dataset::SocEpinions.generate(ScaleProfile::Tiny).to_csr();
    let k = 4;
    for (s, t) in sample_reachable_pairs(&g, k, 5, 3) {
        let walks = count_st_walks(&g, s, t, k);
        let exact = count_simple_paths(&g, s, t, k);
        assert!(walks >= exact, "walks {walks} < exact {exact}");

        let prepared = prepare(&g, s, t, k, PefpVariant::Full);
        let result = run_prepared(&prepared, PefpVariant::Full.engine_options(), &device);
        assert_eq!(result.num_paths, exact, "engine must be exact");

        let estimate = QueryEstimate::compute(&prepared.graph, prepared.s, prepared.t, prepared.k);
        assert!(estimate.max_results >= result.num_paths);
        assert!(estimate.max_intermediate_paths >= result.stats.intermediate_paths);
    }
}

#[test]
fn pruned_graph_estimates_are_never_larger_than_raw_graph_estimates() {
    let g = Dataset::Baidu.generate(ScaleProfile::Tiny).to_csr();
    let k = 5;
    for (s, t) in sample_reachable_pairs(&g, k, 5, 17) {
        let raw = QueryEstimate::compute(&g, s, t, k);
        let prepared = prepare(&g, s, t, k, PefpVariant::Full);
        let pruned = QueryEstimate::compute(&prepared.graph, prepared.s, prepared.t, prepared.k);
        assert!(pruned.max_results <= raw.max_results);
        assert!(pruned.max_intermediate_paths <= raw.max_intermediate_paths);
    }
}

#[test]
fn planned_configurations_fit_the_alveo_u200_budget() {
    let device = DeviceConfig::alveo_u200();
    for dataset in Dataset::all() {
        let g = dataset.generate(ScaleProfile::Tiny).to_csr();
        let Some(&(s, t)) = sample_reachable_pairs(&g, 5, 1, 23).first() else { continue };
        let prepared = prepare(&g, s, t, 5, PefpVariant::Full);
        let plan = plan_query(&prepared, &device);
        assert!(plan.fits_device(), "{}: {:?}", dataset.code(), plan.resources.violations());
    }
}

#[test]
fn default_engine_configuration_fits_with_headroom_but_an_absurd_one_does_not() {
    let device = DeviceConfig::alveo_u200();
    let areas = pefp::fpga::OnChipAreas {
        buffer_bytes: 8_192 * 136,
        processing_bytes: 1_024 * 136,
        graph_cache_bytes: 2 << 20,
        barrier_cache_bytes: 256 << 10,
        fifo_bytes: device.verification_lanes * 2 * 136,
    };
    let default_estimate = ResourceEstimate::estimate(
        device.verification_lanes,
        &areas,
        &ModuleCosts::default(),
        ResourceBudget::alveo_u200(),
    );
    assert!(default_estimate.fits());
    assert!(default_estimate.lut_utilisation() < 0.5);

    let monster = ResourceEstimate::estimate(
        4_000,
        &areas,
        &ModuleCosts::default(),
        ResourceBudget::alveo_u200(),
    );
    assert!(!monster.fits());
}
