//! Allocation accounting for the streaming result pipeline.
//!
//! A counting global allocator measures the bytes allocated by a full
//! engine-to-host query run. Streaming a high-volume query through a
//! `CountingSink` must not pay the O(#paths × k) materialisation that the
//! collect pipeline pays: the engine emits each result from a reused buffer,
//! `TranslateSink` remaps ids through a reused buffer, and no intermediate
//! `Vec<Vec<VertexId>>` is built between the engine and the caller's sink.
//!
//! What *both* pipelines still allocate is the engine's intermediate-path
//! state (buffer area growth, DRAM spills) — that memory is the paper's
//! design point and scales with the enumeration itself, not with result
//! materialisation. The assertions therefore target the *difference* between
//! the two pipelines, at two workload sizes, so the removed cost is isolated
//! from the shared cost.
//!
//! (This lives in its own test binary because a `#[global_allocator]` is
//! process-wide.)

use pefp::core::{pre_bfs, run_prepared, run_prepared_with_sink, PefpVariant, PreparedQuery};
use pefp::fpga::DeviceConfig;
use pefp::graph::generators::{layered_dag, layered_full_path_count, layered_sink, layered_source};
use pefp::graph::{CollectSink, CountingSink, FirstN};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator while counting allocated bytes.
struct CountingAllocator;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocated_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATED_BYTES.load(Ordering::Relaxed) - before, result)
}

/// Bytes allocated by the collect pipeline and by the counting (streaming)
/// pipeline for one prepared query, plus the result count.
fn measure(prep: &PreparedQuery) -> (u64, u64, u64) {
    let device = DeviceConfig::alveo_u200();
    let opts = PefpVariant::Full.engine_options();
    // Warm up once so lazily initialised state does not skew the numbers.
    run_prepared(prep, opts.clone(), &device);

    let (collect_bytes, collected) = allocated_during(|| run_prepared(prep, opts.clone(), &device));
    let (stream_bytes, streamed) = allocated_during(|| {
        let mut sink = CountingSink::new();
        let result = run_prepared_with_sink(prep, opts.clone(), &device, &mut sink);
        assert_eq!(sink.count(), result.num_paths);
        result
    });
    assert_eq!(collected.num_paths, streamed.num_paths);
    (collect_bytes, stream_bytes, streamed.num_paths)
}

#[test]
fn streaming_skips_the_per_path_materialisation_cost() {
    // Two sizes of the fully connected layered DAG: 6^5 = 7,776 and
    // 6^6 = 46,656 result paths (6 and 7 vertices each).
    let small = layered_dag(5, 6, 6, 7).to_csr();
    let big = layered_dag(6, 6, 6, 7).to_csr();
    let prep_small = pre_bfs(&small, layered_source(), layered_sink(5, 6), 6);
    let prep_big = pre_bfs(&big, layered_source(), layered_sink(6, 6), 7);

    let (collect_small, stream_small, paths_small) = measure(&prep_small);
    let (collect_big, stream_big, paths_big) = measure(&prep_big);
    assert_eq!(paths_small, layered_full_path_count(5, 6));
    assert_eq!(paths_big, layered_full_path_count(6, 6));

    // The collect pipeline materialises one Vec per result path (>= 24 bytes
    // of vertex payload each); the streaming pipeline shares every other
    // allocation (buffer area, DRAM spills) with it, so the *difference*
    // must cover at least that materialisation cost — at both sizes.
    for (collect, stream, paths) in
        [(collect_small, stream_small, paths_small), (collect_big, stream_big, paths_big)]
    {
        let floor = paths * 24;
        assert!(
            collect >= stream + floor,
            "collect allocated {collect} B, streaming {stream} B; expected a gap of \
             at least {floor} B for {paths} materialised paths"
        );
    }

    // The removed cost is per-path: the collect-vs-streaming gap must grow
    // with the result count (6x more paths => comfortably > 3x the gap).
    let gap_small = collect_small - stream_small;
    let gap_big = collect_big - stream_big;
    assert!(
        gap_big >= 3 * gap_small,
        "materialisation gap should scale with the result set: {gap_small} B at \
         {paths_small} paths vs {gap_big} B at {paths_big} paths"
    );
}

#[test]
fn first_n_streaming_allocates_a_small_fraction_of_a_full_collect() {
    // 6^6 = 46,656 paths: big enough for the materialised result set to
    // dominate the collect side's allocations.
    let g = layered_dag(6, 6, 6, 7).to_csr();
    let prep = pre_bfs(&g, layered_source(), layered_sink(6, 6), 7);
    let device = DeviceConfig::alveo_u200();
    let opts = PefpVariant::Full.engine_options();
    run_prepared(&prep, opts.clone(), &device); // warm-up

    let (collect_bytes, collected) =
        allocated_during(|| run_prepared(&prep, opts.clone(), &device));
    let (firstn_bytes, _) = allocated_during(|| {
        let mut sink = FirstN::new(1, CollectSink::new());
        let result = run_prepared_with_sink(&prep, opts.clone(), &device, &mut sink);
        assert_eq!(result.num_paths, 1);
        result
    });
    assert_eq!(collected.num_paths, layered_full_path_count(6, 6));
    // FirstN(1)'s allocations are the Θ2-bounded engine working set (a few
    // batches of buffer growth); the full collect pays that *plus* ~47k path
    // vectors. Factor 3 leaves headroom over the measured ~4.3x.
    assert!(
        firstn_bytes * 3 <= collect_bytes,
        "FirstN(1) allocated {firstn_bytes} B vs {collect_bytes} B for the full collect"
    );
}
