//! Multi-CU dispatch correctness and measurement quality.
//!
//! The dispatch executor runs batch queries concurrently on N simulated
//! compute units behind a shared-DRAM arbiter. These tests pin down the two
//! things that must never drift:
//!
//! * **correctness** — the enumerated path sets are identical (as sorted
//!   sets) across 1/2/4 CUs, the serial batch pipeline and the naive DFS
//!   oracle; concurrency must never change *what* is enumerated;
//! * **measurement** — the measured makespan stays within the serial total,
//!   the 4-CU speedup on the 10k Chung-Lu batch profile clears the 1.5x
//!   acceptance floor, and the traffic-aware prediction lands within 30% of
//!   the measured makespan.

use pefp::baselines::naive_dfs_stream;
use pefp::graph::generators::chung_lu;
use pefp::graph::paths::canonicalize;
use pefp::graph::sampling::sample_reachable_pairs;
use pefp::graph::sink::CollectSink;
use pefp::graph::VertexId;
use pefp::host::{BatchScheduler, GraphHandle, QueryRequest, SchedulerConfig};
use pefp_bench::gate::dispatch_scheduler;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Mutex;

/// The 10k Chung-Lu batch profile, shared with the `multi_cu` bench and the
/// CI bench-regression gate — the speedup/model-error assertions below hold
/// for exactly the batch the gate measures.
fn hub_batch() -> (GraphHandle, Vec<QueryRequest>) {
    let handle = pefp_bench::gate::gate_graph();
    let requests = pefp_bench::gate::gate_batch(&handle);
    (handle, requests)
}

#[test]
fn dispatch_path_sets_are_identical_across_cu_widths_and_oracles() {
    let handle = GraphHandle::from_csr("test", chung_lu(500, 6.0, 2.2, 11).to_csr());
    let requests: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, 4, 8, 7)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k: 4 })
        .collect();
    assert!(requests.len() >= 4, "need a real batch");

    // Reference: the serial batch pipeline.
    let serial = BatchScheduler::new(SchedulerConfig::default());
    let mut serial_paths: HashMap<QueryRequest, Vec<Vec<VertexId>>> = HashMap::new();
    serial
        .run_batch_streaming(&handle, &requests, |req, path| {
            serial_paths.entry(*req).or_default().push(path.to_vec());
            ControlFlow::Continue(())
        })
        .unwrap();
    let serial_paths: HashMap<QueryRequest, Vec<Vec<VertexId>>> =
        serial_paths.into_iter().map(|(k, v)| (k, canonicalize(v))).collect();

    // Independent oracle: naive streaming DFS per query.
    for req in &requests {
        let mut sink = CollectSink::new();
        naive_dfs_stream(&handle.csr, req.s, req.t, req.k, &mut sink);
        assert_eq!(
            serial_paths.get(req).cloned().unwrap_or_default(),
            canonicalize(sink.into_paths()),
            "serial batch vs naive oracle on {req:?}"
        );
    }

    // Dispatch on 1, 2 and 4 CUs: identical sorted path sets.
    for cus in [1usize, 2, 4] {
        let streamed = Mutex::new(HashMap::<QueryRequest, Vec<Vec<VertexId>>>::new());
        let outcome = dispatch_scheduler(cus)
            .run_batch_dispatch_streaming(&handle, &requests, |req, path| {
                streamed.lock().unwrap().entry(*req).or_default().push(path.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        let streamed = streamed.into_inner().unwrap();
        for req in &requests {
            assert_eq!(
                canonicalize(streamed.get(req).cloned().unwrap_or_default()),
                serial_paths.get(req).cloned().unwrap_or_default(),
                "dispatch on {cus} CUs diverged on {req:?}"
            );
        }
        // The measured makespan can never exceed the serial total.
        let measured = outcome.measured.expect("dispatch outcomes are measured");
        assert!(
            measured.makespan_cycles <= measured.serial_cycles,
            "{cus} CUs: makespan {} > serial {}",
            measured.makespan_cycles,
            measured.serial_cycles
        );
    }
}

#[test]
fn four_cu_dispatch_clears_the_speedup_floor_on_the_10k_profile() {
    let (handle, requests) = hub_batch();
    let outcome = dispatch_scheduler(4).run_batch(&handle, &requests).unwrap();
    let measured = outcome.measured.as_ref().expect("dispatch outcomes are measured");

    assert_eq!(measured.compute_units, 4);
    assert_eq!(measured.per_cu_queries.iter().sum::<usize>(), requests.len());
    assert!(measured.per_cu_queries.iter().all(|&q| q > 0), "{:?}", measured.per_cu_queries);
    assert!(measured.makespan_cycles <= measured.serial_cycles);
    assert!(
        measured.speedup() >= 1.5,
        "measured 4-CU speedup {:.2} below the 1.5x acceptance floor \
         (makespan {} vs serial {})",
        measured.speedup(),
        measured.makespan_cycles,
        measured.serial_cycles
    );
    // The shared bus saturates at 4 CUs x 0.5 share: contention must show up.
    assert!(measured.contention_cycles > 0);
    assert!(measured.arbiter.refills > 0);
    assert!(measured.arbiter.penalty_cycles > 0);

    // The serial-cycle accounting is deterministic and matches a serial run.
    let serial =
        BatchScheduler::new(SchedulerConfig::default()).run_batch(&handle, &requests).unwrap();
    assert_eq!(measured.serial_cycles, serial.multi_cu.serial_cycles);
    assert_eq!(outcome.total_paths(), serial.total_paths());
}

#[test]
fn predicted_makespan_is_within_30_percent_of_measured() {
    let (handle, requests) = hub_batch();
    for cus in [2usize, 4] {
        let outcome = dispatch_scheduler(cus).run_batch(&handle, &requests).unwrap();
        let measured = outcome.measured.expect("dispatch outcomes are measured");
        assert!(measured.predicted.makespan_cycles > 0);
        assert!(
            measured.model_error() <= 0.30,
            "{cus} CUs: predicted {} vs measured {} — model error {:.1}% exceeds 30%",
            measured.predicted.makespan_cycles,
            measured.makespan_cycles,
            measured.model_error() * 100.0
        );
    }
}

#[test]
fn single_cu_dispatch_equals_the_serial_pipeline_exactly() {
    let (handle, requests) = hub_batch();
    let outcome = dispatch_scheduler(1).run_batch(&handle, &requests).unwrap();
    let measured = outcome.measured.expect("dispatch outcomes are measured");
    // One CU cannot contend with itself: the measurement collapses to the
    // serial execution, cycle for cycle.
    assert_eq!(measured.contention_cycles, 0);
    assert_eq!(measured.makespan_cycles, measured.serial_cycles);
    assert_eq!(measured.per_cu_queries, vec![requests.len()]);
    assert!((measured.speedup() - 1.0).abs() < 1e-12);
    assert_eq!(measured.predicted.makespan_cycles, measured.makespan_cycles);
}
