//! Guards the documented quickstart contract: the `run_query` doc example on
//! `crates/core/src/lib.rs` (and the README) promises exactly 2 paths on the
//! diamond graph. Doctests may be skipped in some CI configurations, so the
//! promise is also pinned here as a plain integration test.

use pefp::core::{run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{CsrGraph, VertexId};

/// The diamond from the doc example: 0 → {1, 2} → 3.
fn diamond() -> CsrGraph {
    CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
}

#[test]
fn doc_example_diamond_has_exactly_two_paths() {
    let result = run_query(
        &diamond(),
        VertexId(0),
        VertexId(3),
        3,
        PefpVariant::Full,
        &DeviceConfig::alveo_u200(),
    );
    assert_eq!(result.num_paths, 2);
    assert_eq!(result.paths.len(), 2);

    let mut paths = result.paths.clone();
    paths.sort();
    assert_eq!(
        paths,
        vec![
            vec![VertexId(0), VertexId(1), VertexId(3)],
            vec![VertexId(0), VertexId(2), VertexId(3)],
        ]
    );
}

#[test]
fn every_variant_agrees_on_the_diamond() {
    let g = diamond();
    let device = DeviceConfig::alveo_u200();
    for variant in PefpVariant::all() {
        let result = run_query(&g, VertexId(0), VertexId(3), 3, variant, &device);
        assert_eq!(result.num_paths, 2, "variant {}", variant.name());
    }
}

#[test]
fn facade_entry_point_matches_the_doc_example() {
    let result = pefp::enumerate_paths(&diamond(), VertexId(0), VertexId(3), 3);
    assert_eq!(result.num_paths, 2);
}
