//! System-level contracts of the streaming `PathSink` result pipeline.
//!
//! * For random graphs and queries, `run_query_with_sink(CollectSink)` is
//!   byte-identical to the legacy collect-everything `run_query`.
//! * `FirstN(n)` receives exactly the first `n` paths of the legacy
//!   enumeration order, and the engine genuinely stops early.
//! * On a query with >= 10^5 results, `FirstN(1)` does asymptotically less
//!   work than the full enumeration (measured in engine batches/expansions).

use pefp::core::{
    run_prepared, run_prepared_with_sink, run_query, run_query_with_sink, CollectSink, FirstN,
    PefpVariant,
};
use pefp::fpga::DeviceConfig;
use pefp::graph::generators::{layered_dag, layered_full_path_count, layered_sink, layered_source};
use pefp::graph::{CsrGraph, VertexId};
use proptest::prelude::*;

fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| CsrGraph::from_edges(n as usize, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn collect_sink_is_byte_identical_to_legacy_run_query(
        g in arb_graph(24, 90),
        s in 0u32..24,
        t in 0u32..24,
        k in 0u32..6,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let device = DeviceConfig::alveo_u200();
        for variant in [PefpVariant::Full, PefpVariant::NoPreBfs] {
            let legacy = run_query(&g, s, t, k, variant, &device);
            let mut sink = CollectSink::new();
            let streamed = run_query_with_sink(
                &g, s, t, k, variant, variant.engine_options(), &device, &mut sink,
            );
            // Same paths, same order, same ids — not just the same set.
            prop_assert_eq!(sink.into_paths(), legacy.paths, "variant {}", variant.name());
            prop_assert_eq!(streamed.num_paths, legacy.num_paths);
            prop_assert_eq!(streamed.stats, legacy.stats);
            prop_assert!(streamed.paths.is_empty());
        }
    }

    #[test]
    fn first_n_returns_exactly_the_first_n_paths(
        g in arb_graph(20, 80),
        s in 0u32..20,
        t in 0u32..20,
        k in 1u32..6,
        n in 1u64..8,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let device = DeviceConfig::alveo_u200();
        let legacy = run_query(&g, s, t, k, PefpVariant::Full, &device);

        let mut sink = FirstN::new(n, CollectSink::new());
        let streamed = run_query_with_sink(
            &g, s, t, k,
            PefpVariant::Full,
            PefpVariant::Full.engine_options(),
            &device,
            &mut sink,
        );
        let expect = (n as usize).min(legacy.paths.len());
        prop_assert_eq!(streamed.num_paths as usize, expect);
        prop_assert_eq!(sink.emitted() as usize, expect);
        let collected = sink.into_inner().into_paths();
        prop_assert_eq!(&collected[..], &legacy.paths[..expect]);
        // The cap breaks with the n-th path, so any run that reached it is
        // flagged as cut short — even when n happened to be the total count.
        if legacy.num_paths >= n {
            prop_assert!(streamed.stats.early_terminated);
        } else {
            prop_assert!(!streamed.stats.early_terminated);
            prop_assert_eq!(streamed.stats, legacy.stats);
        }
    }
}

/// Acceptance: `FirstN(1)` on a query with >= 10^5 results must do
/// asymptotically less work than the full enumeration. The fully connected
/// layered DAG gives a closed-form result count of width^layers = 7^6 =
/// 117,649 paths.
#[test]
fn first_one_on_a_hundred_thousand_result_query_is_asymptotically_cheaper() {
    let (layers, width) = (6usize, 7usize);
    let g = layered_dag(layers, width, width, 1).to_csr();
    let s = layered_source();
    let t = layered_sink(layers, width);
    let k = (layers + 1) as u32;
    let device = DeviceConfig::alveo_u200();
    let total = layered_full_path_count(layers, width);
    assert!(total >= 100_000, "the workload must exceed 10^5 paths, got {total}");

    let prep = pefp::core::pre_bfs(&g, s, t, k);
    let opts = PefpVariant::Full.engine_options();

    let full = {
        let mut counting = pefp::graph::CountingSink::new();
        run_prepared_with_sink(&prep, opts.clone(), &device, &mut counting)
    };
    assert_eq!(full.num_paths, total);

    let mut first = FirstN::new(1, CollectSink::new());
    let capped = run_prepared_with_sink(&prep, opts, &device, &mut first);
    assert_eq!(capped.num_paths, 1);
    assert!(capped.stats.early_terminated);
    assert_eq!(first.into_inner().len(), 1);

    // Asymptotically less work. Batch-DFS drives one path to the target in
    // O(depth) batches while the full run is bounded below by
    // #expansions / Θ2; expansions shrink by orders of magnitude.
    assert!(
        capped.stats.batches * 10 <= full.stats.batches,
        "FirstN(1) used {} batches vs {} for the full run",
        capped.stats.batches,
        full.stats.batches
    );
    assert!(
        capped.stats.expansions * 50 <= full.stats.expansions,
        "FirstN(1) used {} expansions vs {} for the full run",
        capped.stats.expansions,
        full.stats.expansions
    );
}

/// The legacy collect pipeline and the streaming pipeline agree on a
/// high-volume query too (the layered DAG from the acceptance test, one size
/// down so the collect side stays cheap).
#[test]
fn high_volume_collect_and_stream_agree() {
    let g = layered_dag(4, 6, 6, 3).to_csr();
    let (s, t, k) = (layered_source(), layered_sink(4, 6), 5);
    let device = DeviceConfig::alveo_u200();
    let prep = pefp::core::pre_bfs(&g, s, t, k);
    let opts = PefpVariant::Full.engine_options();
    let legacy = run_prepared(&prep, opts.clone(), &device);
    assert_eq!(legacy.num_paths, layered_full_path_count(4, 6));

    let mut sink = CollectSink::with_capacity(legacy.paths.len());
    let streamed = run_prepared_with_sink(&prep, opts, &device, &mut sink);
    assert_eq!(streamed.num_paths, legacy.num_paths);
    assert_eq!(sink.into_paths(), legacy.paths);
}
