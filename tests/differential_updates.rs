//! Differential testing of the epoch-versioned snapshot layer: for random
//! interleavings of edge inserts, window-style expiries and queries, the
//! PEFP engine running over a copy-on-write [`GraphSnapshot`] overlay must
//! answer **byte-identically** — same path set, same emission order — to the
//! same engine running over a CSR graph rebuilt from scratch out of the live
//! edge set at that epoch. A third opinion comes from the bounded-DFS oracle
//! (order-insensitive, so compared canonically).
//!
//! Old snapshots are also replayed *after* every later mutation has been
//! applied, proving that epochs are immutable: an in-flight query pinned to
//! epoch N keeps seeing epoch N no matter what lands afterwards.

use proptest::prelude::*;

use pefp::baselines::naive_dfs_enumerate;
use pefp::core::{prepare_snapshot_with, prepare_with, run_prepared, PefpVariant, PrepareContext};
use pefp::fpga::DeviceConfig;
use pefp::graph::paths::canonicalize;
use pefp::graph::{CsrGraph, GraphDelta, GraphSnapshot, Path, VersionedGraph, VertexId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A query pinned to its admission epoch: the snapshot it was prepared
/// against, the live edge set frozen at that moment, and the `(s, t, k)`
/// triple — replayed after the full mutation history to prove immutability.
type PinnedQuery = (Arc<GraphSnapshot>, BTreeSet<(u32, u32)>, (u32, u32, u32));

/// One step of the interleaved workload, decoded from a generated tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u32, u32),
    Expire(u32, u32),
    Query { s: u32, t: u32, k: u32 },
}

fn decode_op((kind, a, b, k): (u32, u32, u32, u32)) -> Op {
    match kind {
        0..=2 => Op::Insert(a, b),
        3 => Op::Expire(a, b),
        _ => Op::Query { s: a, t: b, k },
    }
}

/// Enumerates over the snapshot overlay, returning paths in engine order.
fn enumerate_snapshot(snapshot: &GraphSnapshot, s: u32, t: u32, k: u32) -> Vec<Path> {
    let mut ctx = PrepareContext::new();
    let prep =
        prepare_snapshot_with(&mut ctx, snapshot, VertexId(s), VertexId(t), k, PefpVariant::Full);
    run_prepared(&prep, PefpVariant::Full.engine_options(), &DeviceConfig::default()).paths
}

/// Rebuilds a CSR from the live edge set and enumerates, in engine order.
fn enumerate_rebuilt(n: usize, edges: &BTreeSet<(u32, u32)>, s: u32, t: u32, k: u32) -> Vec<Path> {
    let edges: Vec<(u32, u32)> = edges.iter().copied().collect();
    let g = Arc::new(CsrGraph::from_edges(n, &edges));
    let mut ctx = PrepareContext::new();
    let prep = prepare_with(&mut ctx, &g, VertexId(s), VertexId(t), k, PefpVariant::Full);
    run_prepared(&prep, PefpVariant::Full.engine_options(), &DeviceConfig::default()).paths
}

/// Runs one interleaving against a [`VersionedGraph`] with the given overlay
/// compaction threshold, checking every query three ways and replaying every
/// pinned snapshot after the full mutation history has been applied.
fn check_interleaving(
    n: u32,
    ops: &[(u32, u32, u32, u32)],
    compact_rows: usize,
) -> Result<(), TestCaseError> {
    let mut versioned = VersionedGraph::from_csr(CsrGraph::from_edges(n as usize, &[]))
        .with_compaction_threshold(compact_rows);
    let mut live: BTreeSet<(u32, u32)> = BTreeSet::new();
    // Queries pinned to their epoch's snapshot, replayed after all mutations.
    let mut pinned: Vec<PinnedQuery> = Vec::new();
    let mut expected_epoch = 0u64;

    for &raw in ops {
        match decode_op(raw) {
            Op::Insert(a, b) => {
                if a == b {
                    continue;
                }
                let mut delta = GraphDelta::new();
                delta.insert_edge(VertexId(a), VertexId(b));
                versioned.apply(&delta);
                live.insert((a, b));
                expected_epoch += 1;
            }
            Op::Expire(a, b) => {
                let mut delta = GraphDelta::new();
                delta.remove_edge(VertexId(a), VertexId(b));
                versioned.apply(&delta);
                live.remove(&(a, b));
                expected_epoch += 1;
            }
            Op::Query { s, t, k } => {
                if s == t {
                    continue;
                }
                let snapshot = Arc::clone(versioned.current());
                let overlay = enumerate_snapshot(&snapshot, s, t, k);
                let rebuilt = enumerate_rebuilt(n as usize, &live, s, t, k);
                prop_assert_eq!(
                    &overlay,
                    &rebuilt,
                    "overlay vs rebuild at epoch {} for ({s},{t},k={k})",
                    snapshot.epoch()
                );
                let oracle_graph =
                    CsrGraph::from_edges(n as usize, &live.iter().copied().collect::<Vec<_>>());
                let oracle =
                    canonicalize(naive_dfs_enumerate(&oracle_graph, VertexId(s), VertexId(t), k));
                prop_assert_eq!(canonicalize(overlay), oracle);
                pinned.push((snapshot, live.clone(), (s, t, k)));
            }
        }
        prop_assert_eq!(versioned.epoch(), expected_epoch);
    }

    // Epoch immutability: every pinned snapshot still answers exactly as its
    // frozen edge set dictates, despite every mutation applied since.
    for (snapshot, frozen_edges, (s, t, k)) in pinned {
        let overlay = enumerate_snapshot(&snapshot, s, t, k);
        let rebuilt = enumerate_rebuilt(n as usize, &frozen_edges, s, t, k);
        prop_assert_eq!(
            overlay,
            rebuilt,
            "pinned epoch {} drifted after later updates",
            snapshot.epoch()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overlay answers are byte-identical to from-scratch rebuilds across
    /// random insert/expire/query interleavings, with overlays left to
    /// accumulate (compaction effectively disabled).
    #[test]
    fn overlay_matches_rebuild_without_compaction(
        n in 4u32..12,
        ops in proptest::collection::vec((0u32..6, 0u32..12, 0u32..12, 1u32..5), 1..24),
    ) {
        let ops: Vec<(u32, u32, u32, u32)> =
            ops.into_iter().map(|(kind, a, b, k)| (kind, a % n, b % n, k)).collect();
        check_interleaving(n, &ops, usize::MAX)?;
    }

    /// The same property with compaction after every delta, so the
    /// compact-into-fresh-CSR path is what answers most queries.
    #[test]
    fn overlay_matches_rebuild_with_aggressive_compaction(
        n in 4u32..12,
        ops in proptest::collection::vec((0u32..6, 0u32..12, 0u32..12, 1u32..5), 1..24),
    ) {
        let ops: Vec<(u32, u32, u32, u32)> =
            ops.into_iter().map(|(kind, a, b, k)| (kind, a % n, b % n, k)).collect();
        check_interleaving(n, &ops, 0)?;
    }
}

/// A deterministic interleaving dense in cycles and re-insertions, run at a
/// mid-size compaction threshold so the history crosses the compaction
/// boundary mid-sequence.
#[test]
fn dense_interleaving_crosses_the_compaction_boundary() {
    let mut ops = Vec::new();
    // Ring 0->1->...->7->0 built edge by edge, querying along the way.
    for i in 0u32..8 {
        ops.push((0, i, (i + 1) % 8, 1));
        ops.push((4, 0, i.max(1) % 8, 4)); // query 0 -> something, k = 4
    }
    // Chords, then expire half the ring, querying between every mutation.
    for i in 0u32..4 {
        ops.push((0, i, (i + 4) % 8, 1));
        ops.push((4, i, (i + 5) % 8, 3));
        ops.push((3, 2 * i, 2 * i + 1, 1));
        ops.push((4, (i + 1) % 8, i, 4));
    }
    check_interleaving(8, &ops, 4).expect("differential check failed");
}
