//! Cross-engine differential tests for the adaptive router's dispatch targets.
//!
//! The router (PR 8) may place any query on the simulated device, on BC-DFS
//! or on JOIN — all fed from the *same* [`PreparedQuery`] the host builds
//! once per `(s, t, k)`. Routing must therefore never change answers: for
//! random graphs and queries, every routable engine, driven through the sink
//! pipeline exactly the way `HostRuntime` drives it (BC-DFS seeded with the
//! prepared barrier plus the source clamp, JOIN on the pruned subgraph,
//! paths translated back to original vertex ids), must return the canonical
//! path set of the naive DFS oracle on the unpruned graph.
//!
//! This harness exists because its in-repo precursor caught a real bug: the
//! Pre-BFS barrier keeps the `k + 1` "unreached" sentinel at a feasible
//! source exactly `k` hops from `t` (the device never reads `bar[s]`), and
//! BC-DFS *does* check the source barrier — without the clamp it silently
//! dropped every path of such queries.
//!
//! A second battery replays the same agreement over copy-on-write
//! [`GraphSnapshot`] overlays pinned at an epoch: routed CPU engines must
//! keep agreeing with the device after later mutations land, because an
//! in-flight query keeps seeing the epoch it was admitted under.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::Arc;

use pefp::baselines::{naive_dfs_enumerate, BcDfs, Join};
use pefp::core::{
    prepare_snapshot_with, prepare_with, route_query, run_prepared, EngineChoice, FnSink,
    PefpVariant, PrepareContext, PreparedQuery, RouteContext, RoutingTable,
};
use pefp::fpga::DeviceConfig;
use pefp::graph::paths::{canonicalize, validate_result, Path};
use pefp::graph::{CsrGraph, GraphDelta, GraphSnapshot, VersionedGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a directed graph with up to `n` vertices and `m` edges.
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| CsrGraph::from_edges(n as usize, &edges))
}

/// Runs one routable CPU engine on a prepared query through the sink
/// pipeline, translating each emitted path back to original vertex ids —
/// the exact dispatch the `HostRuntime` CPU worker performs.
fn cpu_engine_paths(prepared: &PreparedQuery, engine: EngineChoice) -> Vec<Path> {
    if !prepared.feasible {
        return Vec::new();
    }
    let g = prepared.graph.as_ref();
    let (s, t, k) = (prepared.s, prepared.t, prepared.k);
    let mut paths: Vec<Path> = Vec::new();
    let mut sink = FnSink(|path: &[VertexId]| {
        paths.push(prepared.translate_path(path));
        ControlFlow::Continue(())
    });
    match engine {
        EngineChoice::CpuBcDfs => {
            // Pre-BFS sweeps only k-1 reverse hops, so a feasible source
            // exactly k hops from t keeps the k+1 sentinel; clamp it, as the
            // runtime does, before handing the barrier to BC-DFS.
            let mut bar = prepared.barrier.clone();
            if let Some(b) = bar.get_mut(s.index()) {
                *b = (*b).min(k);
            }
            let _ = BcDfs::with_barrier(bar, k).enumerate_into(g, s, t, k, &mut sink);
        }
        EngineChoice::CpuJoin => {
            let _ = Join::new().enumerate_into(g, s, t, k, &mut sink);
        }
        _ => panic!("not a CPU engine: {engine:?}"),
    }
    paths
}

/// Asserts that the device engine, BC-DFS and JOIN — all fed from `prepared`
/// — agree canonically with `expected` (the naive oracle on the full graph).
fn assert_engines_agree(
    prepared: &PreparedQuery,
    expected: &[Path],
    label: &str,
) -> Result<(), TestCaseError> {
    let device =
        run_prepared(prepared, PefpVariant::Full.engine_options(), &DeviceConfig::default());
    prop_assert_eq!(
        canonicalize(device.paths),
        expected.to_vec(),
        "device disagrees with the oracle on {}",
        label
    );
    for engine in [EngineChoice::CpuBcDfs, EngineChoice::CpuJoin] {
        prop_assert_eq!(
            canonicalize(cpu_engine_paths(prepared, engine)),
            expected.to_vec(),
            "{} disagrees with the oracle on {}",
            engine.name(),
            label
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every engine the router can pick returns the same canonical path set,
    /// and the decision itself is deterministic and internally consistent.
    #[test]
    fn routable_engines_agree_on_random_graphs(
        g in arb_graph(22, 80),
        s in 0u32..22,
        t in 0u32..22,
        k in 0u32..6,
    ) {
        let s = VertexId(s);
        let t = VertexId(t);
        let expected = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        prop_assert!(validate_result(&g, s, t, k as usize, &expected).is_empty());

        let g = Arc::new(g);
        let mut ctx = PrepareContext::new();
        let prepared = prepare_with(&mut ctx, &g, s, t, k, PefpVariant::Full);
        assert_engines_agree(&prepared, &expected, "the base graph")?;

        // The decision layer: deterministic, finite, and honest about its
        // pick (the chosen engine's cost is the reported estimate).
        let table = RoutingTable::builtin();
        let rtx = RouteContext { compute_units: 4, charge_banked: false };
        let d1 = route_query(&prepared, &table, &rtx);
        let d2 = route_query(&prepared, &table, &rtx);
        prop_assert_eq!(d1.choice, d2.choice);
        prop_assert_eq!(d1.cost_estimate_us.to_bits(), d2.cost_estimate_us.to_bits());
        prop_assert!(d1.cost_estimate_us.is_finite() && d1.cost_estimate_us >= 0.0);
        prop_assert!(!d1.rationale.is_empty());
    }

    /// The agreement holds over snapshot overlays pinned at an epoch, and
    /// keeps holding after later mutations land on the versioned graph.
    #[test]
    fn routable_engines_agree_on_pinned_snapshots(
        n in 6u32..18,
        inserts in prop::collection::vec((0u32..18, 0u32..18), 1..40),
        later in prop::collection::vec((0u32..18, 0u32..18), 0..20),
        s in 0u32..18,
        t in 0u32..18,
        k in 1u32..5,
    ) {
        let (s, t) = (s % n, t % n);
        let mut versioned = VersionedGraph::from_csr(CsrGraph::from_edges(n as usize, &[]));
        let mut live: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(a, b) in &inserts {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let mut delta = GraphDelta::new();
            delta.insert_edge(VertexId(a), VertexId(b));
            versioned.apply(&delta);
            live.insert((a, b));
        }

        // Pin the snapshot and the oracle's view of this epoch.
        let snapshot: Arc<GraphSnapshot> = Arc::clone(versioned.current());
        let edges: Vec<(u32, u32)> = live.iter().copied().collect();
        let rebuilt = CsrGraph::from_edges(n as usize, &edges);
        let expected =
            canonicalize(naive_dfs_enumerate(&rebuilt, VertexId(s), VertexId(t), k));

        let mut ctx = PrepareContext::new();
        let prepared = prepare_snapshot_with(
            &mut ctx, &snapshot, VertexId(s), VertexId(t), k, PefpVariant::Full,
        );
        assert_engines_agree(&prepared, &expected, "the pinned snapshot")?;

        // Mutate the versioned graph afterwards; the pinned prepared query
        // must still answer for its own epoch on every engine.
        for &(a, b) in &later {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let mut delta = GraphDelta::new();
            if live.contains(&(a, b)) {
                delta.remove_edge(VertexId(a), VertexId(b));
            } else {
                delta.insert_edge(VertexId(a), VertexId(b));
            }
            versioned.apply(&delta);
        }
        assert_engines_agree(&prepared, &expected, "the pinned snapshot after mutations")?;
    }
}
