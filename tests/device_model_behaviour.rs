//! Integration tests of the *performance model*: the paper's qualitative
//! claims about each optimisation must be visible in the simulated device
//! metrics, independently of absolute numbers.

use pefp::core::{prepare, run_prepared, run_query, EngineOptions, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{generators, Dataset, ScaleProfile, VertexId};
use pefp::workload::generate_queries;

fn dense_graph() -> pefp::graph::CsrGraph {
    generators::chung_lu(400, 8.0, 2.1, 77).to_csr()
}

#[test]
fn caching_reduces_dram_traffic_and_cycles() {
    let g = dense_graph();
    let (s, t, k) = (VertexId(0), VertexId(200), 5);
    let device = DeviceConfig::alveo_u200();
    let full = run_query(&g, s, t, k, PefpVariant::Full, &device);
    let nocache = run_query(&g, s, t, k, PefpVariant::NoCache, &device);
    assert!(
        nocache.device.counters.dram_words_total() > full.device.counters.dram_words_total(),
        "disabling the cache must increase DRAM traffic ({} vs {})",
        nocache.device.counters.dram_words_total(),
        full.device.counters.dram_words_total()
    );
    assert!(nocache.device.cycles > full.device.cycles);
    // The paper reports >= 2x average speedup from caching (Fig. 14).
    let speedup = nocache.device.cycles as f64 / full.device.cycles as f64;
    assert!(speedup > 1.5, "caching speedup only {speedup:.2}x");
}

#[test]
fn data_separation_speeds_up_verification_bound_workloads() {
    let g = dense_graph();
    let (s, t, k) = (VertexId(1), VertexId(111), 5);
    let device = DeviceConfig::alveo_u200();
    let full = run_query(&g, s, t, k, PefpVariant::Full, &device);
    let basic = run_query(&g, s, t, k, PefpVariant::NoDataSep, &device);
    let speedup = basic.device.cycles as f64 / full.device.cycles as f64;
    assert!(speedup >= 1.0, "dataflow verification should never be slower");
    assert!(speedup < 4.0, "speedup {speedup:.2}x exceeds what a 3-stage module can deliver");
}

#[test]
fn prebfs_shrinks_the_transferred_subgraph() {
    // On a graph with many vertices irrelevant to the query, Pre-BFS must cut
    // the PCIe payload and the preprocessing-induced search space.
    let g = Dataset::Amazon.generate(ScaleProfile::Tiny).to_csr();
    let queries = generate_queries(&g, 6, 3, 7);
    for q in queries {
        let with = prepare(&g, q.s, q.t, 6, PefpVariant::Full);
        let without = prepare(&g, q.s, q.t, 6, PefpVariant::NoPreBfs);
        assert!(with.graph.num_vertices() < without.graph.num_vertices());
        assert!(with.transfer_bytes() < without.transfer_bytes());
    }
}

#[test]
fn batch_dfs_never_spills_more_than_fifo() {
    let g = dense_graph();
    let device = DeviceConfig::alveo_u200();
    let queries = generate_queries(&g, 5, 3, 99);
    // Small buffer so the batching order actually matters.
    let mut base = PefpVariant::Full.engine_options();
    base.buffer_capacity = 64;
    base.dram_fetch_batch = 32;
    base.processing_capacity = 32;
    base.collect_paths = false;
    let mut fifo = PefpVariant::NoBatchDfs.engine_options();
    fifo.buffer_capacity = 64;
    fifo.dram_fetch_batch = 32;
    fifo.processing_capacity = 32;
    fifo.collect_paths = false;

    let mut dfs_flushes = 0u64;
    let mut fifo_flushes = 0u64;
    for q in &queries {
        let prep = prepare(&g, q.s, q.t, 5, PefpVariant::Full);
        let a = run_prepared(&prep, base.clone(), &device);
        let b = run_prepared(&prep, fifo.clone(), &device);
        assert_eq!(a.num_paths, b.num_paths, "batching order must not change the result");
        dfs_flushes += a.device.counters.buffer_flushes;
        fifo_flushes += b.device.counters.buffer_flushes;
    }
    assert!(
        dfs_flushes <= fifo_flushes,
        "Batch-DFS spilled {dfs_flushes} times, FIFO {fifo_flushes} times"
    );
}

#[test]
fn query_time_grows_with_k() {
    let g = Dataset::WikiTalk.generate(ScaleProfile::Tiny).to_csr();
    let device = DeviceConfig::alveo_u200();
    let queries = generate_queries(&g, 3, 2, 5);
    let q = queries[0];
    let mut prev_cycles = 0u64;
    for k in [3u32, 4, 5] {
        let r = run_query(&g, q.s, q.t, k, PefpVariant::Full, &device);
        assert!(
            r.device.cycles >= prev_cycles,
            "simulated work should not shrink when k grows (k={k})"
        );
        prev_cycles = r.device.cycles;
    }
}

#[test]
fn engine_options_overrides_flow_through() {
    let g = dense_graph();
    let prep = prepare(&g, VertexId(0), VertexId(123), 4, PefpVariant::Full);
    let device = DeviceConfig::alveo_u200();
    let mut opts = EngineOptions::pefp_default();
    opts.collect_paths = false;
    let counted = run_prepared(&prep, opts, &device);
    assert!(counted.paths.is_empty());
    let collected = run_prepared(&prep, EngineOptions::pefp_default(), &device);
    assert_eq!(collected.paths.len() as u64, counted.num_paths);
}
